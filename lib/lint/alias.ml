(* Field-sensitive interprocedural alias & escape analysis.

   The MVCC serving layer (PR 8) rests on one structural invariant:
   a published `Iq.Snapshot.t` owns its mutable state exclusively, and
   every copy-on-write `with_*` successor writes only through freshly
   allocated (or explicitly copied) structure. Nothing in the type
   system checks that — one aliased [float array] or [Hashtbl] shared
   between a successor and a published generation silently breaks
   reader isolation. This module proves (or refutes) the invariant
   statically.

   Shape of the analysis:
   - An abstract heap of {e allocation sites}. Evaluating a binding
     body grows a per-binding site table: one site per syntactic
     allocation ([Array.make], record literal, [ref], …), one per
     function parameter, one per module-level value known to be
     mutable, and lazily one per field path read off a parameter or
     global root ([t.groups] materialises the [OParam ("t",
     ["groups"])] site). Abstract values are site sets; the
     environment maps let-bound names to them.
   - An {e ownership lattice} [Fresh < Shared < Published] per site.
     Fresh means "this binding allocated it and nobody else can see
     it"; escaping (being stored into caller-visible structure)
     moves Fresh to Shared; being the value of an [Atomic.set]
     publication moves anything to Published. The QCheck properties
     in the test suite pin the lattice laws (join commutative /
     monotone, escape idempotent).
   - {e Summaries} per top-level binding, keyed ["Mod.val"] like the
     callgraph nodes: which positional parameters (at which field
     paths) the function container-mutates, whether the result is a
     fresh allocation or an alias of a parameter, whether the
     function publishes and if so always under the writer lock, and
     whether closures handed to it run under a lock. Summaries are
     recomputed in definition order over every file, driven by
     {!Dataflow.stabilise} — the same bounded-rounds scheme
     generation-protocol uses, with early exit once the table stops
     changing (path order puts [lib/bloom] and [lib/core] before
     their users, so cross-module chains typically converge in round
     two).
   - An {e event stream} per binding: container writes, mutating
     calls resolved through summaries, snapshot/successor
     constructions, [Atomic.set] publications, stores into
     caller-visible structure. The four rule families (Cow_alias,
     Snap_escape, Pub_order, Unlocked_pub) are consumers of this
     stream plus the site table — the witness chains in their SARIF
     [relatedLocations] are walks from an event back through site
     origins.

   Deliberate approximations, shared with the rest of lib/lint:
   closures are inlined at their occurrence; summary-returned fresh
   values are bare sites (field structure does not survive a summary,
   so deep sharing through helper copies is invisible — precision
   loss lands on the "no finding" side); tuple/constructor patterns
   bind every variable to the whole scrutinee value; unknown external
   calls neither allocate nor escape. *)

open Parsetree

module SMap = Map.Make (String)
module SSet = Set.Make (String)
module ISet = Set.Make (Int)

let strip = Ast_util.strip
let last_comp = Ast_util.last_comp
let lid_comps = Ast_util.lid_comps
let flatten_lid = Ast_util.flatten_lid

(* Callgraph values inside inline submodules are named ["Sub.f"];
   the last dot-segment is the binding's own name. *)
let last_dot s =
  match String.rindex_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

(* ---------------------- ownership lattice ------------------------- *)

type own = Fresh | Shared | Published

let own_rank = function Fresh -> 0 | Shared -> 1 | Published -> 2
let own_join a b = if own_rank a >= own_rank b then a else b
let own_leq a b = own_rank a <= own_rank b
let own_equal a b = own_rank a = own_rank b

(* Ownership transfer at an escape point: a fresh value someone else
   can now reach is shared; shared/published stay put (idempotent). *)
let own_escape = function Fresh -> Shared | o -> o

let own_to_string = function
  | Fresh -> "fresh"
  | Shared -> "shared"
  | Published -> "published"

(* ---------------------- abstract heap ----------------------------- *)

type origin =
  | OAlloc of string  (** what was allocated, e.g. ["Array.make"] *)
  | OParam of string * string list  (** parameter name, field path *)
  | OGlobal of string * string list  (** module-level value, field path *)

let describe_origin = function
  | OAlloc what -> what
  | OParam (p, []) -> Printf.sprintf "parameter `%s`" p
  | OParam (p, path) ->
      Printf.sprintf "parameter field `%s.%s`" p (String.concat "." path)
  | OGlobal (g, []) -> Printf.sprintf "module-level `%s`" g
  | OGlobal (g, path) ->
      Printf.sprintf "module-level `%s.%s`" g (String.concat "." path)

type site = {
  s_id : int;
  s_loc : Location.t;  (** allocation / first-materialisation point *)
  s_origin : origin;
  s_mutable : bool;  (** known-mutable shape (container, record, ref) *)
  s_snap : bool;  (** result of a Snapshot constructor *)
  mutable s_own : own;
  mutable s_fields : ISet.t SMap.t;
  mutable s_base : ISet.t;  (** functional-update base ([{ t with … }]) *)
}

type aval = ISet.t

type event =
  | Write of { w_loc : Location.t; w_what : string; w_target : aval }
      (** an element-level container write ([a.(i) <- v],
          [Hashtbl.replace], [Buffer.add_*], [r := v], …) *)
  | Call_mut of { c_loc : Location.t; c_callee : string; c_target : aval }
      (** a call that container-mutates [c_target] inside the callee,
          per its summary *)
  | Ctor of {
      k_loc : Location.t;
      k_what : string;
      k_kind : [ `Snap | `Succ ];
      k_guarded : bool;
      k_args : (Location.t * aval) list;
    }  (** snapshot construction / cross-module [with_*] successor *)
  | Publish of { p_loc : Location.t; p_guarded : bool; p_direct : bool }
      (** [Atomic.set _.current v] (direct), or a call whose summary
          publishes (propagated) *)
  | Escape of { e_loc : Location.t; e_into : string; e_value : aval }
      (** a value stored into caller-visible structure *)

(* Per-binding summary. No locations inside: summaries are compared
   structurally across rounds by [Dataflow.stabilise]. *)
type summary = {
  sm_mutates : (int * string list) list;
      (** positional parameter index × field path container-mutated *)
  sm_ret_fresh : bool;  (** result is a this-call fresh allocation *)
  sm_ret_params : int list;  (** result may alias these parameters *)
  sm_publishes : bool;
  sm_guarded : bool;  (** every publication ran under the writer lock *)
  sm_wrapper : bool;  (** closures handed to it run under a lock *)
  sm_topval_mutable : bool;
      (** zero-parameter binding whose value is mutable module state *)
}

let empty_summary =
  {
    sm_mutates = [];
    sm_ret_fresh = false;
    sm_ret_params = [];
    sm_publishes = false;
    sm_guarded = true;
    sm_wrapper = false;
    sm_topval_mutable = false;
  }

type ctx = {
  x_resolve : Longident.t -> Callgraph.resolution;
  x_modname : string;
  x_summaries : (string, summary) Hashtbl.t;
  x_wrappers : SSet.t;  (** same-file lock-wrapper names (transitive) *)
  x_sites : (string, site) Hashtbl.t;
  x_by_id : (int, site) Hashtbl.t;
  mutable x_next : int;
  mutable x_events : event list;
  mutable x_saw_wrapper : bool;
}

let loc_key (loc : Location.t) =
  let p = loc.Location.loc_start in
  Printf.sprintf "%d.%d" p.Lexing.pos_lnum (p.Lexing.pos_cnum - p.Lexing.pos_bol)

let intern cx ~key ~loc ~origin ~mut ?(snap = false) ~own () =
  match Hashtbl.find_opt cx.x_sites key with
  | Some s -> s
  | None ->
      let s =
        {
          s_id = cx.x_next;
          s_loc = loc;
          s_origin = origin;
          s_mutable = mut;
          s_snap = snap;
          s_own = own;
          s_fields = SMap.empty;
          s_base = ISet.empty;
        }
      in
      cx.x_next <- cx.x_next + 1;
      Hashtbl.add cx.x_sites key s;
      Hashtbl.add cx.x_by_id s.s_id s;
      s

let alloc_site cx ~loc ~what ?(mut = true) ?(snap = false) () =
  intern cx
    ~key:("a:" ^ loc_key loc ^ ":" ^ what)
    ~loc ~origin:(OAlloc what) ~mut ~snap ~own:Fresh ()

let site_of cx id = Hashtbl.find_opt cx.x_by_id id

let sites_of cx ids =
  ISet.fold
    (fun id acc -> match site_of cx id with Some s -> s :: acc | None -> acc)
    ids []
  |> List.rev

let event_of cx ev =
  cx.x_events <- ev :: cx.x_events

(* Reading [v.f]: known fields first, then the functional-update base
   chain, else lazily materialise a child site under a parameter /
   global root (bounded path depth keeps the heap finite). *)
let max_path = 3

let rec field_read cx ~loc depth ids f =
  if depth > 6 then ISet.empty
  else
    ISet.fold
      (fun id acc ->
        match site_of cx id with
        | None -> acc
        | Some s -> (
            match SMap.find_opt f s.s_fields with
            | Some v -> ISet.union v acc
            | None -> (
                if not (ISet.is_empty s.s_base) then
                  ISet.union (field_read cx ~loc (depth + 1) s.s_base f) acc
                else
                  match s.s_origin with
                  | OParam (p, path) when List.length path < max_path ->
                      let path' = path @ [ f ] in
                      let key = "p:" ^ p ^ "." ^ String.concat "." path' in
                      let c =
                        intern cx ~key ~loc ~origin:(OParam (p, path'))
                          ~mut:false ~own:(own_join s.s_own Shared) ()
                      in
                      ISet.add c.s_id acc
                  | OGlobal (g, path) when List.length path < max_path ->
                      let path' = path @ [ f ] in
                      let key = "g:" ^ g ^ "." ^ String.concat "." path' in
                      let c =
                        intern cx ~key ~loc ~origin:(OGlobal (g, path'))
                          ~mut:false ~own:(own_join s.s_own Shared) ()
                      in
                      ISet.add c.s_id acc
                  | _ -> acc)))
      ids ISet.empty

let rec aval_path cx ~loc ids = function
  | [] -> ids
  | f :: rest -> aval_path cx ~loc (field_read cx ~loc 0 ids f) rest

(* [base.f <- v]: strong update on a unique site, weak join otherwise.
   Storing into caller-visible or already-escaped structure is an
   escape point for the stored value. *)
let set_field cx bids f vv =
  let strong = ISet.cardinal bids = 1 in
  ISet.iter
    (fun id ->
      match site_of cx id with
      | None -> ()
      | Some s ->
          let next =
            if strong then vv
            else
              match SMap.find_opt f s.s_fields with
              | Some old -> ISet.union old vv
              | None -> vv
          in
          s.s_fields <- SMap.add f next s.s_fields)
    bids

let escape_into cx ~loc bids vv =
  if not (ISet.is_empty vv) then
    let shared_root =
      List.find_opt
        (fun s ->
          (not (own_equal s.s_own Fresh))
          ||
          match s.s_origin with
          | OParam _ | OGlobal _ -> true
          | OAlloc _ -> false)
        (sites_of cx bids)
    in
    match shared_root with
    | None -> ()
    | Some root ->
        ISet.iter
          (fun id ->
            match site_of cx id with
            | Some s -> s.s_own <- own_escape s.s_own
            | None -> ())
          vv;
        event_of cx
          (Escape { e_loc = loc; e_into = describe_origin root.s_origin;
                    e_value = vv })

(* ---------------------- known externals --------------------------- *)

let allocator_names =
  [
    ("Array",
     [ "make"; "create_float"; "init"; "copy"; "append"; "sub"; "concat";
       "of_list"; "of_seq"; "map"; "mapi"; "make_matrix" ]);
    ("Hashtbl", [ "create"; "copy" ]);
    ("Bytes", [ "create"; "make"; "copy"; "of_string"; "sub" ]);
    ("Buffer", [ "create" ]);
    ("Queue", [ "create"; "copy" ]);
    ("Stack", [ "create"; "copy" ]);
  ]

let is_allocator lid =
  match lid_comps lid with
  | [ "ref" ] -> true
  | comps -> (
      match List.rev comps with
      | v :: m :: _ -> (
          match List.assoc_opt m allocator_names with
          | Some vs -> List.mem v vs
          | None -> false)
      | _ -> false)

(* Element-level writes: [Callgraph.ext_mutators] plus the [Array.set]
   family (the parser desugars [a.(i) <- v] into an [Array.set]
   application, so it arrives here, not at [Pexp_setfield]). *)
let container_mutators =
  ("Array.set", [ 0 ]) :: ("Array.unsafe_set", [ 0 ])
  :: ("Bytes.set", [ 0 ]) :: ("Bytes.unsafe_set", [ 0 ])
  :: ("incr", [ 0 ]) :: ("decr", [ 0 ])
  :: Callgraph.ext_mutators

let snap_ctor_names = [ "make"; "next"; "root" ]

(* ---------------------- evaluator --------------------------------- *)

type env = aval SMap.t

let env_join a b =
  SMap.union (fun _ x y -> Some (ISet.union x y)) a b

let env_equal a b = SMap.equal ISet.equal a b

let summary_key (n : Callgraph.node) = n.Callgraph.n_mod ^ "." ^ n.Callgraph.n_val

let summary_of cx ns =
  List.find_map (fun n -> Hashtbl.find_opt cx.x_summaries (summary_key n)) ns

let pattern_bind env pat v =
  List.fold_left
    (fun env x -> SMap.add x v env)
    env
    (Ast_util.pattern_vars pat)

let rec eval cx ~prot env e =
  let e = strip e in
  let loc = e.pexp_loc in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } when SMap.mem x env ->
      (env, SMap.find x env)
  | Pexp_ident { txt; _ } -> (env, global_val cx ~loc txt)
  | Pexp_constant _ -> (env, ISet.empty)
  | Pexp_let (_, vbs, body) ->
      let env =
        List.fold_left
          (fun env vb ->
            match (vb.pvb_pat.ppat_desc, (strip vb.pvb_expr).pexp_desc) with
            | Ppat_tuple ps, Pexp_tuple es when List.length ps = List.length es
              ->
                (* Componentwise: [let (t', qi) = (copy t, n)] keeps
                   the fresh copy separate from the index. *)
                List.fold_left2
                  (fun env p ce ->
                    let env, v = eval cx ~prot env ce in
                    pattern_bind env p v)
                  env ps es
            | _ ->
                let env, v = eval cx ~prot env vb.pvb_expr in
                pattern_bind env vb.pvb_pat v)
          env vbs
      in
      eval cx ~prot env body
  | Pexp_sequence (a, b) ->
      let env, _ = eval cx ~prot env a in
      let prot = prot || Lockset.is_mutex_lock a in
      eval cx ~prot env b
  | Pexp_ifthenelse (c, t, f) ->
      let env, _ = eval cx ~prot env c in
      let env_t, vt = eval cx ~prot env t in
      let env_f, vf =
        match f with Some f -> eval cx ~prot env f | None -> (env, ISet.empty)
      in
      (env_join env_t env_f, ISet.union vt vf)
  | Pexp_match (scrut, cases) ->
      let env, sv = eval cx ~prot env scrut in
      eval_cases cx ~prot env sv cases
  | Pexp_function cases -> eval_cases cx ~prot env ISet.empty cases
  | Pexp_try (body, handlers) ->
      let env_b, vb = eval cx ~prot env body in
      let env_h, vh = eval_cases cx ~prot (env_join env env_b) ISet.empty handlers in
      (env_join env_b env_h, ISet.union vb vh)
  | Pexp_fun (_, dflt, pat, body) ->
      (* Inline the closure: its body's effects happen "here"; the
         parameters shadow whatever they capture. *)
      let env =
        match dflt with
        | Some d ->
            let env', _ = eval cx ~prot env d in
            env'
        | None -> env
      in
      let env' = pattern_bind env pat ISet.empty in
      let _, _ = eval cx ~prot env' body in
      (env, ISet.empty)
  | Pexp_apply (f, args) -> eval_apply cx ~prot env loc f args
  | Pexp_field (b, { txt; _ }) ->
      let env, bv = eval cx ~prot env b in
      (env, field_read cx ~loc 0 bv (last_comp txt))
  | Pexp_setfield (b, { txt; _ }, v) ->
      let env, bv = eval cx ~prot env b in
      let env, vv = eval cx ~prot env v in
      set_field cx bv (last_comp txt) vv;
      escape_into cx ~loc bv vv;
      (env, ISet.empty)
  | Pexp_record (fields, base) ->
      let env, bids =
        match base with
        | Some b -> eval cx ~prot env b
        | None -> (env, ISet.empty)
      in
      let env, fvals =
        List.fold_left
          (fun (env, acc) ({ Location.txt; _ }, fe) ->
            let env, v = eval cx ~prot env fe in
            (env, (last_comp txt, (strip fe).pexp_loc, v) :: acc))
          (env, []) fields
      in
      let fvals = List.rev fvals in
      let labels = List.map (fun (l, _, _) -> l) fvals in
      let snap = cx.x_modname = "Snapshot" && List.mem "generation" labels in
      let s = alloc_site cx ~loc ~what:"record literal" ~snap () in
      List.iter
        (fun (l, _, v) ->
          let next =
            match SMap.find_opt l s.s_fields with
            | Some old -> ISet.union old v
            | None -> v
          in
          s.s_fields <- SMap.add l next s.s_fields)
        fvals;
      s.s_base <- ISet.union s.s_base bids;
      if snap then
        event_of cx
          (Ctor
             {
               k_loc = loc;
               k_what = "Snapshot literal";
               k_kind = `Snap;
               k_guarded = prot;
               k_args = List.map (fun (_, l, v) -> (l, v)) fvals;
             });
      (env, ISet.singleton s.s_id)
  | Pexp_array es ->
      let env =
        List.fold_left (fun env e -> fst (eval cx ~prot env e)) env es
      in
      (env, ISet.singleton (alloc_site cx ~loc ~what:"array literal" ()).s_id)
  | Pexp_tuple es ->
      let env, v =
        List.fold_left
          (fun (env, acc) e ->
            let env, v = eval cx ~prot env e in
            (env, ISet.union acc v))
          (env, ISet.empty) es
      in
      (env, v)
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      (* [Some v] / [Ok v] are transparent wrappers for aliasing. *)
      match arg with Some a -> eval cx ~prot env a | None -> (env, ISet.empty))
  | Pexp_while (c, b) ->
      let env =
        eval_loop cx env (fun env ->
            let env, _ = eval cx ~prot env c in
            fst (eval cx ~prot env b))
      in
      (env, ISet.empty)
  | Pexp_for (pat, lo, hi, _, b) ->
      let env, _ = eval cx ~prot env lo in
      let env, _ = eval cx ~prot env hi in
      let env =
        eval_loop cx env (fun env ->
            fst (eval cx ~prot (pattern_bind env pat ISet.empty) b))
      in
      (env, ISet.empty)
  | Pexp_letop { let_; ands; body } ->
      let env =
        List.fold_left
          (fun env (op : binding_op) ->
            let env, v = eval cx ~prot env op.pbop_exp in
            pattern_bind env op.pbop_pat v)
          env (let_ :: ands)
      in
      let env_b, v = eval cx ~prot env body in
      (env_join env env_b, v)
  | Pexp_letmodule (_, _, body) | Pexp_open (_, body) | Pexp_lazy body ->
      eval cx ~prot env body
  | Pexp_assert a | Pexp_send (a, _) ->
      let env, _ = eval cx ~prot env a in
      (env, ISet.empty)
  | _ -> (eval_children cx ~prot env e, ISet.empty)

and eval_cases cx ~prot env scrut_v cases =
  let out = ref None in
  let env_out = ref None in
  List.iter
    (fun (c : case) ->
      let env_c = pattern_bind env c.pc_lhs scrut_v in
      let env_c =
        match c.pc_guard with
        | Some g -> fst (eval cx ~prot env_c g)
        | None -> env_c
      in
      let env_c, v = eval cx ~prot env_c c.pc_rhs in
      out := Some (match !out with None -> v | Some o -> ISet.union o v);
      env_out :=
        Some
          (match !env_out with
          | None -> env_c
          | Some eo -> env_join eo env_c))
    cases;
  ( (match !env_out with None -> env | Some eo -> eo),
    match !out with None -> ISet.empty | Some v -> v )

and eval_loop _cx env body =
  let cur = ref env in
  let continue_ = ref true in
  let n = ref 0 in
  while !continue_ && !n < 8 do
    incr n;
    let next = env_join !cur (body !cur) in
    if env_equal next !cur then continue_ := false else cur := next
  done;
  !cur

and eval_children cx ~prot env e =
  let acc = ref env in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ child -> acc := fst (eval cx ~prot !acc child));
    }
  in
  Ast_iterator.default_iterator.expr it e;
  !acc

and global_val cx ~loc lid =
  match cx.x_resolve lid with
  | Callgraph.RNodes ns ->
      let mutable_global =
        List.exists
          (fun n ->
            match Hashtbl.find_opt cx.x_summaries (summary_key n) with
            | Some sm -> sm.sm_topval_mutable
            | None -> false)
          ns
      in
      if mutable_global then
        let g = flatten_lid lid in
        let s =
          intern cx ~key:("g:" ^ g) ~loc ~origin:(OGlobal (g, [])) ~mut:true
            ~own:Shared ()
        in
        ISet.singleton s.s_id
      else ISet.empty
  | _ -> ISet.empty

and eval_apply cx ~prot env loc f args =
  match Typestate.rewrite_pipe f args with
  | Some (g, args') -> (
      match (strip g).pexp_desc with
      | Pexp_apply (g0, gargs) -> eval_apply cx ~prot env loc g0 (gargs @ args')
      | _ -> eval_apply cx ~prot env loc g args')
  | None -> (
      let fs = strip f in
      match fs.pexp_desc with
      | Pexp_ident { txt; _ } -> eval_head cx ~prot env loc txt args
      | _ ->
          let env, _ = eval cx ~prot env fs in
          let env =
            List.fold_left
              (fun env (_, a) -> fst (eval cx ~prot env a))
              env args
          in
          (env, ISet.empty))

and eval_head cx ~prot env loc lid args =
  let name = flatten_lid lid in
  let base = last_comp lid in
  let resolution = cx.x_resolve lid in
  let callee_summary =
    match resolution with
    | Callgraph.RNodes ns -> summary_of cx ns
    | _ -> None
  in
  (* Closures handed to a lock wrapper (or [Mutex.protect]) run under
     the lock. *)
  let arg_prot =
    prot
    || name = "Mutex.protect"
    || SSet.mem base cx.x_wrappers
    || match callee_summary with Some sm -> sm.sm_wrapper | None -> false
  in
  (match callee_summary with
  | Some sm when sm.sm_wrapper -> cx.x_saw_wrapper <- true
  | _ -> ());
  if SSet.mem base cx.x_wrappers || name = "Mutex.protect" then
    cx.x_saw_wrapper <- true;
  (* Evaluate arguments (closures inline under [arg_prot]),
     remembering positional abstract values. *)
  let env = ref env in
  let pos_vals = ref [] in
  let all_vals = ref [] in
  List.iter
    (fun (lbl, a) ->
      let a_prot =
        match (strip a).pexp_desc with
        | Pexp_fun _ | Pexp_function _ -> arg_prot
        | _ -> prot
      in
      let env', v = eval cx ~prot:a_prot !env a in
      env := env';
      all_vals := ((strip a).pexp_loc, v) :: !all_vals;
      match lbl with
      | Asttypes.Nolabel -> pos_vals := (a, v) :: !pos_vals
      | _ -> ())
    args;
  let env = !env in
  let pos = Array.of_list (List.rev !pos_vals) in
  let all_vals = List.rev !all_vals in
  let pos_val i =
    if i >= 0 && i < Array.length pos then snd pos.(i) else ISet.empty
  in
  let pos_expr i =
    if i >= 0 && i < Array.length pos then Some (fst pos.(i)) else None
  in
  (* Snapshot construction — syntactic ([Snapshot.make …]) or resolved
     (same-module [make]/[next]/[root] inside snapshot.ml). *)
  let snap_ctor =
    (List.mem base snap_ctor_names
    && List.mem "Snapshot" (lid_comps lid))
    ||
    match resolution with
    | Callgraph.RNodes ns ->
        List.exists
          (fun n ->
            n.Callgraph.n_mod = "Snapshot"
            && List.mem (last_dot n.Callgraph.n_val) snap_ctor_names)
          ns
    | _ -> false
  in
  if snap_ctor then begin
    event_of cx
      (Ctor
         {
           k_loc = loc;
           k_what = name;
           k_kind = `Snap;
           k_guarded = prot;
           k_args = all_vals;
         });
    let s = alloc_site cx ~loc ~what:name ~snap:true () in
    (env, ISet.singleton s.s_id)
  end
  else if name = ":=" then begin
    let lhs = pos_val 0 and rhs = pos_val 1 in
    set_field cx lhs "contents" rhs;
    escape_into cx ~loc lhs rhs;
    let target =
      ISet.filter
        (fun id ->
          match site_of cx id with
          | Some s -> not (own_equal s.s_own Fresh)
          | None -> false)
        lhs
    in
    if not (ISet.is_empty target) then
      event_of cx (Write { w_loc = loc; w_what = ":="; w_target = target });
    (env, ISet.empty)
  end
  else if name = "Atomic.set" then begin
    let published_field =
      match pos_expr 0 with
      | Some a -> (
          match (strip a).pexp_desc with
          | Pexp_field (_, { txt = flid; _ }) -> last_comp flid = "current"
          | _ -> false)
      | None -> false
    in
    let v = pos_val 1 in
    let publishes_snap =
      ISet.exists
        (fun id ->
          match site_of cx id with Some s -> s.s_snap | None -> false)
        v
    in
    if published_field || publishes_snap then begin
      ISet.iter
        (fun id ->
          match site_of cx id with
          | Some s -> s.s_own <- own_join s.s_own Published
          | None -> ())
        v;
      event_of cx (Publish { p_loc = loc; p_guarded = prot; p_direct = true })
    end;
    (env, ISet.empty)
  end
  else if is_allocator lid then
    (env, ISet.singleton (alloc_site cx ~loc ~what:name ()).s_id)
  else
    match List.assoc_opt name container_mutators with
    | Some idxs ->
        List.iter
          (fun i ->
            let target = pos_val i in
            if not (ISet.is_empty target) then begin
              event_of cx
                (Write { w_loc = loc; w_what = name; w_target = target });
              (* The other arguments are now reachable through the
                 container: an escape when the container is shared. *)
              let stored =
                List.fold_left
                  (fun acc j ->
                    if j = i then acc else ISet.union acc (pos_val j))
                  ISet.empty
                  (List.init (Array.length pos) Fun.id)
              in
              escape_into cx ~loc target stored
            end)
          idxs;
        (env, ISet.empty)
    | None -> (
        match resolution with
        | Callgraph.RNodes ns -> (
            let is_wrapper_callee =
              match callee_summary with
              | Some sm -> sm.sm_wrapper
              | None -> false
            in
            let succ_ctor =
              (not is_wrapper_callee)
              && List.exists
                   (fun n ->
                     n.Callgraph.n_mod <> cx.x_modname
                     && String.starts_with ~prefix:"with_"
                          (last_dot n.Callgraph.n_val))
                   ns
            in
            if succ_ctor then
              event_of cx
                (Ctor
                   {
                     k_loc = loc;
                     k_what = name;
                     k_kind = `Succ;
                     k_guarded = prot;
                     k_args = all_vals;
                   });
            match callee_summary with
            | None -> (env, ISet.empty)
            | Some sm ->
                List.iter
                  (fun (i, path) ->
                    let root = pos_val i in
                    if not (ISet.is_empty root) then
                      let target =
                        ISet.filter
                          (fun id ->
                            match site_of cx id with
                            | Some s -> not (own_equal s.s_own Fresh)
                            | None -> false)
                          (aval_path cx ~loc root path)
                      in
                      if not (ISet.is_empty target) then
                        event_of cx
                          (Call_mut
                             { c_loc = loc; c_callee = name; c_target = target }))
                  sm.sm_mutates;
                if sm.sm_publishes then
                  event_of cx
                    (Publish
                       {
                         p_loc = loc;
                         p_guarded = prot || sm.sm_guarded;
                         p_direct = false;
                       });
                let ret =
                  if sm.sm_ret_fresh then
                    ISet.singleton (alloc_site cx ~loc ~what:name ()).s_id
                  else ISet.empty
                in
                let ret =
                  List.fold_left
                    (fun acc i -> ISet.union acc (pos_val i))
                    ret sm.sm_ret_params
                in
                (env, ret))
        | Callgraph.RExt _ | Callgraph.ROther -> (env, ISet.empty))

(* ---------------------- per-binding analysis ---------------------- *)

type analysis = {
  an_events : event list;  (** in evaluation order, deduplicated *)
  an_ret : aval;
  an_params : string list;
  an_site : int -> site option;
  an_saw_wrapper : bool;
}

let event_key = function
  | Write { w_loc; w_what; _ } -> "w:" ^ loc_key w_loc ^ w_what
  | Call_mut { c_loc; c_callee; _ } -> "c:" ^ loc_key c_loc ^ c_callee
  | Ctor { k_loc; k_what; _ } -> "k:" ^ loc_key k_loc ^ k_what
  | Publish { p_loc; _ } -> "p:" ^ loc_key p_loc
  | Escape { e_loc; e_into; _ } -> "e:" ^ loc_key e_loc ^ e_into

let analyze ~resolve ~summaries ~modname ~wrappers body =
  let params, core = Typestate.peel_params body in
  let cx =
    {
      x_resolve = resolve;
      x_modname = modname;
      x_summaries = summaries;
      x_wrappers = wrappers;
      x_sites = Hashtbl.create 32;
      x_by_id = Hashtbl.create 32;
      x_next = 0;
      x_events = [];
      x_saw_wrapper = false;
    }
  in
  let env =
    List.fold_left
      (fun env p ->
        let s =
          intern cx ~key:("p:" ^ p) ~loc:body.pexp_loc ~origin:(OParam (p, []))
            ~mut:false ~own:Shared ()
        in
        SMap.add p (ISet.singleton s.s_id) env)
      SMap.empty params
  in
  let _, ret = eval cx ~prot:false env core in
  let seen = Hashtbl.create 32 in
  let events =
    List.filter
      (fun ev ->
        let k = event_key ev in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      (List.rev cx.x_events)
  in
  {
    an_events = events;
    an_ret = ret;
    an_params = params;
    an_site = site_of cx;
    an_saw_wrapper = cx.x_saw_wrapper;
  }

(* ---------------------- summaries --------------------------------- *)

let summarize ~resolve ~summaries ~modname ~wrappers body =
  let an = analyze ~resolve ~summaries ~modname ~wrappers body in
  let param_idx p =
    let rec go i = function
      | [] -> None
      | q :: _ when q = p -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 an.an_params
  in
  let mutated_params target =
    ISet.fold
      (fun id acc ->
        match an.an_site id with
        | Some { s_origin = OParam (p, path); _ } -> (
            match param_idx p with Some i -> (i, path) :: acc | None -> acc)
        | _ -> acc)
      target []
  in
  let mutates =
    List.concat_map
      (function
        | Write { w_target; _ } -> mutated_params w_target
        | Call_mut { c_target; _ } -> mutated_params c_target
        | _ -> [])
      an.an_events
    |> List.sort_uniq compare
  in
  let ret_sites =
    ISet.fold
      (fun id acc ->
        match an.an_site id with Some s -> s :: acc | None -> acc)
      an.an_ret []
  in
  let ret_fresh =
    ret_sites <> []
    && List.for_all
         (fun s ->
           (match s.s_origin with OAlloc _ -> true | _ -> false)
           && own_equal s.s_own Fresh)
         ret_sites
  in
  let ret_params =
    List.filter_map
      (fun s ->
        match s.s_origin with
        | OParam (p, []) -> param_idx p
        | _ -> None)
      ret_sites
    |> List.sort_uniq compare
  in
  let pubs =
    List.filter_map
      (function Publish { p_guarded; _ } -> Some p_guarded | _ -> None)
      an.an_events
  in
  {
    sm_mutates = List.filteri (fun i _ -> i < 16) mutates;
    sm_ret_fresh = ret_fresh;
    sm_ret_params = ret_params;
    sm_publishes = pubs <> [];
    sm_guarded = List.for_all Fun.id pubs;
    sm_wrapper = Lockset.mentions_mutex body || an.an_saw_wrapper;
    sm_topval_mutable =
      an.an_params = []
      && List.exists
           (fun s ->
             s.s_mutable && match s.s_origin with OAlloc _ -> true | _ -> false)
           ret_sites;
  }

(* ---------------------- whole-program build ----------------------- *)

let path_is_test path =
  let base = Filename.basename path in
  String.starts_with ~prefix:"test" base
  || Filename.dirname path |> Filename.basename |> String.equal "test"

type source_file = {
  af_file : Project.file;
  af_resolve : Longident.t -> Callgraph.resolution;
  af_wrappers : SSet.t;
  af_bindings : (string * expression * Location.t) list;
}

type t = {
  al_files : source_file list;  (** in path order, tests excluded *)
  al_summaries : (string, summary) Hashtbl.t;
  al_rounds : int;  (** rounds [Dataflow.stabilise] actually ran *)
}

let build (cg : Callgraph.t) =
  let resolver = Callgraph.resolver_of cg in
  let proj = cg.Callgraph.cg_project in
  let files =
    List.filter_map
      (fun (f : Project.file) ->
        match (f.Project.kind, f.Project.str) with
        | Project.Impl, Some str when not (path_is_test f.Project.path) ->
            Some
              {
                af_file = f;
                af_resolve = resolver f;
                af_wrappers = Lockset.lock_wrapper_closure str;
                af_bindings = Typestate.top_bindings str;
              }
        | _ -> None)
      proj.Project.files
  in
  let summaries = Hashtbl.create 128 in
  let step () =
    List.iter
      (fun sf ->
        let modname = sf.af_file.Project.modname in
        List.iter
          (fun (name, body, _loc) ->
            Hashtbl.replace summaries (modname ^ "." ^ name)
              (summarize ~resolve:sf.af_resolve ~summaries ~modname
                 ~wrappers:sf.af_wrappers body))
          sf.af_bindings)
      files
  in
  let snapshot () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) summaries []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let rounds =
    Dataflow.stabilise ~rounds:4 ~equal:( = ) ~snapshot step
  in
  { al_files = files; al_summaries = summaries; al_rounds = rounds }

let analyze_binding (al : t) (sf : source_file) body =
  analyze ~resolve:sf.af_resolve ~summaries:al.al_summaries
    ~modname:sf.af_file.Project.modname ~wrappers:sf.af_wrappers body
