(* snapshot-mutable-escape: a mutable value reachable from a
   constructed [Snapshot.t] is also reachable from a caller-visible
   root.

   A published generation must own its mutable state exclusively; if
   the state handed to a snapshot constructor is module-level, or a
   local allocation that also escaped into caller-visible structure,
   every mutation through the other root is visible to readers of the
   "immutable" snapshot. Passing a caller's own parameter into the
   constructor is ownership {e transfer}, not sharing — the rule fires
   only on module-level roots and on double-rooted allocations
   (allocated here, stored into shared structure here, AND handed to
   the snapshot). *)

let rule_id = "snapshot-mutable-escape"

let source_mentions_snapshot (sf : Alias.source_file) =
  let f = sf.Alias.af_file in
  f.Project.modname = "Snapshot"
  ||
  let src = f.Project.source in
  let n = String.length src in
  let rec scan i =
    if i + 8 > n then false
    else if String.sub src i 8 = "Snapshot" then true
    else scan (i + 1)
  in
  scan 0

let findings (al : Alias.t) =
  List.concat_map
    (fun (sf : Alias.source_file) ->
      if not (source_mentions_snapshot sf) then []
      else
        let file = sf.Alias.af_file.Project.path in
        List.concat_map
          (fun (_name, body, _bloc) ->
            let an = Alias.analyze_binding al sf body in
            (* First escape point per site, for the witness chain. *)
            let escaped = Hashtbl.create 8 in
            List.iter
              (function
                | Alias.Escape { e_loc; e_into; e_value } ->
                    Alias.ISet.iter
                      (fun id ->
                        if not (Hashtbl.mem escaped id) then
                          Hashtbl.add escaped id (e_loc, e_into))
                      e_value
                | _ -> ())
              an.Alias.an_events;
            List.concat_map
              (function
                | Alias.Ctor { k_loc; k_kind = `Snap; k_args; _ } ->
                    let seen = Hashtbl.create 4 in
                    List.concat_map
                      (fun (_aloc, aval) ->
                        Alias.ISet.fold
                          (fun id acc ->
                            if Hashtbl.mem seen id then acc
                            else begin
                              Hashtbl.add seen id ();
                              match an.Alias.an_site id with
                              | Some s when s.Alias.s_mutable -> (
                                  match s.Alias.s_origin with
                                  | Alias.OGlobal (g, _) ->
                                      Report.mk ~file k_loc rule_id
                                        (Printf.sprintf
                                           "mutable module-level state `%s` \
                                            flows into this snapshot; a \
                                            published generation must own \
                                            its state exclusively"
                                           g)
                                        ~related:
                                          [
                                            Report.rel ~file s.Alias.s_loc
                                              (Printf.sprintf
                                                 "%s enters the snapshot's \
                                                  state here"
                                                 (Alias.describe_origin
                                                    s.Alias.s_origin));
                                          ]
                                      :: acc
                                  | Alias.OAlloc what -> (
                                      match Hashtbl.find_opt escaped id with
                                      | Some (eloc, einto) ->
                                          Report.mk ~file k_loc rule_id
                                            (Printf.sprintf
                                               "mutable state reachable from \
                                                this snapshot also escaped \
                                                to %s; writers through the \
                                                other root invalidate reader \
                                                isolation"
                                               einto)
                                            ~related:
                                              [
                                                Report.rel ~file s.Alias.s_loc
                                                  (Printf.sprintf
                                                     "allocated here (%s)"
                                                     what);
                                                Report.rel ~file eloc
                                                  (Printf.sprintf
                                                     "escapes to %s here"
                                                     einto);
                                              ]
                                          :: acc
                                      | None -> acc)
                                  | Alias.OParam _ -> acc)
                              | _ -> acc
                            end)
                          aval [])
                      k_args
                | _ -> [])
              an.Alias.an_events)
          sf.Alias.af_bindings)
    al.Alias.al_files
