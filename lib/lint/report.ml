(* Findings, output formats and the CI baseline.

   One finding type is shared by the per-file rules and the
   whole-program analyses. Three renderings: the classic
   [file:line:col [rule] message] text lines, a machine-readable JSON
   document, and SARIF 2.1.0 for CI annotation upload. The baseline is
   a checked-in JSON file of per-(file, rule) finding counts: a run
   with [--baseline] suppresses groups that are at-or-under their
   budget, so legacy findings are tolerated but any new finding (or a
   regression pushing a group over budget) fails the gate. Counts
   rather than line numbers keep the baseline stable under unrelated
   edits to the same file. *)

(* A related location: a step of the witness path explaining the
   finding (the mutation a missing bump orphans, the evaluation call a
   missing budget check leaves unbounded, the open site of a leaked
   handle). Rendered as SARIF [relatedLocations]. *)
type related = {
  rl_file : string;
  rl_line : int;
  rl_col : int;
  rl_note : string;
}

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  related : related list;
}

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message

let mk ?(related = []) ~file (loc : Location.t) rule message =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    message;
    related;
  }

let rel ~file (loc : Location.t) note =
  let p = loc.Location.loc_start in
  {
    rl_file = file;
    rl_line = p.Lexing.pos_lnum;
    rl_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rl_note = note;
  }

(* ------------------------------------------------------------------ *)
(* JSON emission (stdlib-only; the toolchain has no JSON package)      *)
(* ------------------------------------------------------------------ *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"'

type format = Text | Json | Sarif

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "sarif" -> Some Sarif
  | _ -> None

let render_text findings =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Format.asprintf "%a" pp_finding f);
      Buffer.add_char buf '\n')
    findings;
  Buffer.contents buf

let add_finding_json buf f =
  Buffer.add_string buf "    { \"file\": ";
  add_str buf f.file;
  Buffer.add_string buf (Printf.sprintf ", \"line\": %d, \"col\": %d, \"rule\": " f.line f.col);
  add_str buf f.rule;
  Buffer.add_string buf ", \"message\": ";
  add_str buf f.message;
  (* Witness path, omitted when empty so reports without one stay
     byte-stable. *)
  if f.related <> [] then begin
    Buffer.add_string buf ", \"related\": [ ";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf "{ \"file\": ";
        add_str buf r.rl_file;
        Buffer.add_string buf
          (Printf.sprintf ", \"line\": %d, \"col\": %d, \"note\": " r.rl_line
             r.rl_col);
        add_str buf r.rl_note;
        Buffer.add_string buf " }")
      f.related;
    Buffer.add_string buf " ]"
  end;
  Buffer.add_string buf " }"

(* [timings]: per-pass wall times in seconds from a [--timings] run. *)
let render_json ?(timings = []) findings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"tool\": \"iqlint\",\n  \"schema\": 1,\n";
  if timings <> [] then begin
    Buffer.add_string buf "  \"timings_ms\": {";
    List.iteri
      (fun i (pass, secs) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\n    ";
        add_str buf pass;
        Buffer.add_string buf (Printf.sprintf ": %.3f" (secs *. 1000.)))
      timings;
    Buffer.add_string buf "\n  },\n"
  end;
  Buffer.add_string buf
    (Printf.sprintf "  \"count\": %d,\n  \"findings\": [\n" (List.length findings));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_finding_json buf f)
    findings;
  if findings <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* SARIF 2.1.0 — the minimal subset GitHub code scanning accepts:
   tool.driver with rule metadata, plus one result per finding.
   Columns are 1-based in SARIF; our [col] is 0-based. *)
let render_sarif ~rules findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n\
    \  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"iqlint\",\n\
    \          \"rules\": [\n";
  let rules = List.sort (fun (a, _) (b, _) -> String.compare a b) rules in
  List.iteri
    (fun i (id, doc) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "            { \"id\": ";
      add_str buf id;
      Buffer.add_string buf ", \"shortDescription\": { \"text\": ";
      add_str buf doc;
      Buffer.add_string buf " } }")
    rules;
  Buffer.add_string buf
    "\n          ]\n        }\n      },\n      \"results\": [\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "        { \"ruleId\": ";
      add_str buf f.rule;
      Buffer.add_string buf ", \"level\": \"error\", \"message\": { \"text\": ";
      add_str buf f.message;
      Buffer.add_string buf
        " }, \"locations\": [ { \"physicalLocation\": { \"artifactLocation\": { \"uri\": ";
      add_str buf f.file;
      Buffer.add_string buf
        (Printf.sprintf
           " }, \"region\": { \"startLine\": %d, \"startColumn\": %d } } } ]"
           f.line (f.col + 1));
      if f.related <> [] then begin
        Buffer.add_string buf ", \"relatedLocations\": [ ";
        List.iteri
          (fun j r ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf "{ \"physicalLocation\": { \"artifactLocation\": { \"uri\": ";
            add_str buf r.rl_file;
            Buffer.add_string buf
              (Printf.sprintf
                 " }, \"region\": { \"startLine\": %d, \"startColumn\": %d } }, \
                  \"message\": { \"text\": "
                 r.rl_line (r.rl_col + 1));
            add_str buf r.rl_note;
            Buffer.add_string buf " } }")
          f.related;
        Buffer.add_string buf " ]"
      end;
      Buffer.add_string buf " }")
    findings;
  if findings <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "      ]\n    }\n  ]\n}\n";
  Buffer.contents buf

let render ?timings ~rules format findings =
  match format with
  | Text -> render_text findings
  | Json -> render_json ?timings findings
  | Sarif -> render_sarif ~rules findings

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (for the baseline file only)                    *)
(* ------------------------------------------------------------------ *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of float
  | J_bool of bool
  | J_null

exception Bad_json of string

let parse_json src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'u' ->
              (* \uXXXX: keep ASCII, replace the rest — the baseline
                 schema never needs non-ASCII escapes. *)
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub src !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); J_obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          J_obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); J_arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          J_arr (elems [])
    | Some 't' ->
        if !pos + 4 <= n && String.sub src !pos 4 = "true" then (
          pos := !pos + 4;
          J_bool true)
        else fail "bad literal"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub src !pos 5 = "false" then (
          pos := !pos + 5;
          J_bool false)
        else fail "bad literal"
    | Some 'n' ->
        if !pos + 4 <= n && String.sub src !pos 4 = "null" then (
          pos := !pos + 4;
          J_null)
        else fail "bad literal"
    | Some c when c = '-' || (c >= '0' && c <= '9') ->
        let start = !pos in
        let num_char c =
          (c >= '0' && c <= '9')
          || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while (match peek () with Some c when num_char c -> true | _ -> false) do
          advance ()
        done;
        (match float_of_string_opt (String.sub src start (!pos - start)) with
        | Some f -> J_num f
        | None -> fail "bad number")
    | _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad_json msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

type baseline_entry = { b_file : string; b_rule : string; b_count : int }

let load_baseline path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | src -> (
      match parse_json src with
      | Error msg -> Error (Printf.sprintf "%s: invalid JSON (%s)" path msg)
      | Ok (J_obj fields) -> (
          match List.assoc_opt "entries" fields with
          | Some (J_arr entries) -> (
              let entry = function
                | J_obj ef -> (
                    match
                      ( List.assoc_opt "file" ef,
                        List.assoc_opt "rule" ef,
                        List.assoc_opt "count" ef )
                    with
                    | Some (J_str f), Some (J_str r), Some (J_num c) ->
                        Some { b_file = f; b_rule = r; b_count = int_of_float c }
                    | _ -> None)
                | _ -> None
              in
              match List.map entry entries with
              | parsed when List.for_all Option.is_some parsed ->
                  Ok (List.filter_map Fun.id parsed)
              | _ ->
                  Error
                    (path
                   ^ ": every entry needs \"file\", \"rule\" and \"count\""))
          | _ -> Error (path ^ ": missing \"entries\" array"))
      | Ok _ -> Error (path ^ ": expected a JSON object"))

(* Group budget semantics: a (file, rule) group at or under its
   baselined count is suppressed entirely; a group over budget is
   reported entirely (we cannot tell which member is the new one). *)
let group_counts findings =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun f ->
      let key = (f.file, f.rule) in
      Hashtbl.replace counts key
        (1 + Option.value (Hashtbl.find_opt counts key) ~default:0))
    findings;
  counts

let budget_of entries file rule =
  List.fold_left
    (fun acc e ->
      if e.b_file = file && e.b_rule = rule then acc + e.b_count else acc)
    0 entries

let apply_baseline entries findings =
  let counts = group_counts findings in
  List.filter
    (fun f ->
      Option.value (Hashtbl.find_opt counts (f.file, f.rule)) ~default:0
      > budget_of entries f.file f.rule)
    findings

(* The ratchet report: every (file, rule) group whose current count
   exceeds its baselined budget, as (file, rule, budget, current). A
   group absent from the baseline has budget 0, so brand-new findings
   regress too. *)
let baseline_regressions entries findings =
  let counts = group_counts findings in
  Hashtbl.fold
    (fun (file, rule) count acc ->
      let b = budget_of entries file rule in
      if count > b then (file, rule, b, count) :: acc else acc)
    counts []
  |> List.sort compare

(* Ratchet downward: cap every baselined budget at the count the rule
   actually produces today and drop groups that no longer fire at all.
   Counts never grow here — growth is a gate failure, not a baseline
   update. *)
let prune_entries entries findings =
  let counts = group_counts findings in
  List.filter_map
    (fun e ->
      let current =
        Option.value (Hashtbl.find_opt counts (e.b_file, e.b_rule)) ~default:0
      in
      let capped = min e.b_count current in
      if capped <= 0 then None else Some { e with b_count = capped })
    entries
  |> List.sort_uniq compare

let entries_json ?(note = "") entries =
  let entries =
    List.sort compare
      (List.map (fun e -> (e.b_file, e.b_rule, e.b_count)) entries)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"version\": 1,\n";
  if note <> "" then begin
    Buffer.add_string buf "  \"note\": ";
    add_str buf note;
    Buffer.add_string buf ",\n"
  end;
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i (file, rule, count) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "    { \"file\": ";
      add_str buf file;
      Buffer.add_string buf ", \"rule\": ";
      add_str buf rule;
      Buffer.add_string buf (Printf.sprintf ", \"count\": %d }" count))
    entries;
  if entries <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let baseline_json ?note findings =
  let counts = group_counts findings in
  let entries =
    Hashtbl.fold
      (fun (file, rule) count acc ->
        { b_file = file; b_rule = rule; b_count = count } :: acc)
      counts []
  in
  entries_json ?note entries
