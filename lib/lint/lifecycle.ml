(* handle-lifecycle: open → use → close typestate for pools and
   channels.

   Tracked resources are let-bound results of [Parallel.create], the
   stdlib [open_in*]/[open_out*] family, the serving-session family
   ([Session.open_]/[Session.open_exn] and [Session.prepare]), and the
   durable write-ahead log ([Wal.open_]); their closers are
   [Parallel.shutdown], [close_in*]/[close_out*],
   [Session.close]/[Session.finalize], and [Wal.close].
   Per function body, each resource variable moves through

     Open {used} --close--> Closed --close--> (double-close)
                  \--use after Closed--------> (use-after-close)

   with two leak checks: a resource still [Open] at the function's
   exit that never escaped is never-closed; a close that is not the
   [~finally] of a [Fun.protect] bracket, on a handle that has been
   used, leaks on the exception path between open and close (the
   sqlite-simple/sqlheavy bracket idiom — suppressed in test files,
   where bodies run under the harness's own wrapper).

   Escape hatches keep the rule quiet where ownership moves: a
   resource mentioned outside an argument position (returned, stored,
   captured) becomes untracked, and a variable whose branches disagree
   (closed on one path, open on the other) joins to untracked rather
   than guessing. Module-level pools (top-level bindings) are never
   tracked — they live for the process and are closed by [at_exit]
   conventions. *)

open Parsetree

let rule_id = "handle-lifecycle"

module SMap = Map.Make (String)

type state =
  | Open of { kind : string; oloc : Location.t; used : bool }
  | Closed of Location.t
  | Escaped

type st = state SMap.t

let state_equal a b =
  match (a, b) with
  | Open a, Open b -> a.kind = b.kind && a.oloc = b.oloc && a.used = b.used
  | Closed a, Closed b -> a = b
  | Escaped, Escaped -> true
  | _ -> false

let join_state a b =
  match (a, b) with
  | Open a', Open b' when a'.kind = b'.kind && a'.oloc = b'.oloc ->
      Open { a' with used = a'.used || b'.used }
  | Closed _, Closed _ -> a
  | Escaped, _ | _, Escaped -> Escaped
  | _ ->
      (* Closed on one path, open on the other: conditional ownership
         we cannot prove either way — stop tracking. *)
      Escaped

let join a b =
  SMap.union (fun _ x y -> Some (join_state x y)) a b

let equal = SMap.equal state_equal

(* ---------------------- resource tables --------------------------- *)

let in_chans = [ "open_in"; "open_in_bin"; "open_in_gen" ]
let out_chans = [ "open_out"; "open_out_bin"; "open_out_gen" ]

let stdlibish = function
  | [ _ ] | [ "Stdlib"; _ ] | [ "In_channel"; _ ] | [ "Out_channel"; _ ] ->
      true
  | _ -> false

(* [creator e] — Some kind when [e] is an application of a tracked
   resource constructor. *)
let creator e =
  match (Ast_util.strip e).pexp_desc with
  | Pexp_apply (f, _) -> (
      match (Ast_util.strip f).pexp_desc with
      | Pexp_ident { txt; _ } -> (
          let comps = Ast_util.lid_comps txt in
          let last = Ast_util.last_comp txt in
          if last = "create" && List.mem "Parallel" comps then Some "pool"
          else if
            (last = "open_" || last = "open_exn") && List.mem "Session" comps
          then Some "session"
          else if last = "prepare" && List.mem "Session" comps then
            Some "prepared statement"
          else if last = "open_" && List.mem "Wal" comps then
            Some "write-ahead log"
          else if List.mem last in_chans && stdlibish comps then
            Some "input channel"
          else if List.mem last out_chans && stdlibish comps then
            Some "output channel"
          else None)
      | _ -> None)
  | _ -> None

let closer lid =
  let comps = Ast_util.lid_comps lid in
  let last = Ast_util.last_comp lid in
  if last = "shutdown" && List.mem "Parallel" comps then true
  else if (last = "close" || last = "finalize") && List.mem "Session" comps
  then true
  else if last = "close" && List.mem "Wal" comps then true
  else
    List.mem last
      [ "close_in"; "close_in_noerr"; "close_out"; "close_out_noerr"; "close" ]
    && stdlibish comps

let bare_arg a =
  match (Ast_util.strip a).pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | _ -> None

(* ---------------------- bracket pre-scan -------------------------- *)

(* Names closed inside some [Fun.protect ~finally:...] of this body:
   their close is exception-safe, so no exception-path report. *)
let bracketed_names body =
  let acc = ref [] in
  let scan_finally fin =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
              when closer txt -> (
                match args with
                | (_, a) :: _ -> (
                    match bare_arg a with
                    | Some v -> acc := v :: !acc
                    | None -> ())
                | [] -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it fin
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply
              ( {
                  pexp_desc =
                    Pexp_ident
                      {
                        txt = Longident.Ldot (Longident.Lident "Fun", "protect");
                        _;
                      };
                  _;
                },
                args ) ->
              List.iter
                (fun (lbl, a) ->
                  match lbl with
                  | Asttypes.Labelled "finally" -> scan_finally a
                  | _ -> ())
                args
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body;
  !acc

(* ---------------------- the analysis ------------------------------ *)

let findings ~in_test ~file str =
  let out = ref [] in
  let emit ?(related = []) loc message =
    out := Report.mk ~related ~file loc rule_id message :: !out
  in
  let analyze (_name, body, _bloc) =
    let bracketed = bracketed_names body in
    let on_bind st vars rhs =
      let st = List.fold_left (fun st v -> SMap.remove v st) st vars in
      match (vars, rhs) with
      | [ v ], Some r -> (
          match creator r with
          | Some kind ->
              SMap.add v (Open { kind; oloc = r.pexp_loc; used = false }) st
          | None -> st)
      | _ -> st
    in
    let on_apply st lid loc args =
      if closer lid then
        match args with
        | (_, a) :: _ -> (
            match bare_arg a with
            | Some v -> (
                match SMap.find_opt v st with
                | Some (Closed first) ->
                    emit loc
                      ~related:[ Report.rel ~file first "first closed here" ]
                      (Printf.sprintf
                         "`%s` is closed twice; the second close races or \
                          raises depending on the resource"
                         v);
                    st
                | Some (Open { kind; oloc; used }) ->
                    if used && (not (List.mem v bracketed)) && not in_test then
                      emit loc
                        ~related:[ Report.rel ~file oloc "opened here" ]
                        (Printf.sprintf
                           "%s `%s` is closed outside a Fun.protect bracket; \
                            an exception raised between open and close leaks \
                            it — close it in ~finally"
                           kind v);
                    SMap.add v (Closed loc) st
                | Some Escaped -> SMap.add v (Closed loc) st
                | None -> st)
            | None -> st)
        | [] -> st
      else
        List.fold_left
          (fun st (_, a) ->
            match bare_arg a with
            | None -> st
            | Some v -> (
                match SMap.find_opt v st with
                | Some (Closed cloc) ->
                    emit a.pexp_loc
                      ~related:[ Report.rel ~file cloc "closed/shut down here" ]
                      (Printf.sprintf
                         "`%s` is used after it was closed/shut down" v);
                    st
                | Some (Open o) -> SMap.add v (Open { o with used = true }) st
                | Some Escaped | None -> st))
          st args
    in
    let on_ident st lid _loc =
      match lid with
      | Longident.Lident x when SMap.mem x st -> SMap.add x Escaped st
      | _ -> st
    in
    let hooks =
      {
        (Typestate.default_hooks ~join ~equal) with
        Typestate.on_bind;
        on_apply;
        on_ident;
      }
    in
    let final = Typestate.exec hooks SMap.empty body in
    SMap.iter
      (fun v state ->
        match state with
        | Open { kind; oloc; _ } ->
            emit oloc
              (Printf.sprintf
                 "%s `%s` is never closed on some path through this function \
                  (no %s reaches the exit); close it, ideally in a \
                  Fun.protect ~finally bracket"
                 kind v
                 (match kind with
                 | "pool" -> "Parallel.shutdown"
                 | "session" -> "Session.close"
                 | "prepared statement" -> "Session.finalize"
                 | "write-ahead log" -> "Wal.close"
                 | _ -> "close"))
        | Closed _ | Escaped -> ())
      final
  in
  List.iter analyze (Typestate.top_bindings str);
  !out
