(* domain-unsafe-capture as a lock-set analysis.

   The heuristic ancestor of this rule flagged every mutation of
   externally-bound state inside a closure passed to
   [Parallel.parallel_for]/[map_array]. This version partitions those
   accesses by what actually guards them and reports only the
   genuinely unguarded ones:

   - Mutex-guarded: a [Mutex.lock ...; e] sequence, a [Mutex.protect]
     argument, or a closure passed to a local lock wrapper (any
     binding whose own body takes a [Mutex]) is protected.
   - Disjoint slots: inside a [parallel_for] closure, an array/bytes
     write whose index is exactly one of the closure's own parameters
     hits a distinct cell per iteration — the idiomatic
     [out.(i) <- f i] gather — and cannot race. Only [parallel_for]
     qualifies: a [map_array] closure receives elements, not indices,
     so an index variable there is never the iteration counter.
   - Sequential pools: closures handed to a pool created with
     [Parallel.create ~domains:1] (a literal) never leave the calling
     domain.

   Everything else — [:=], [<-], [incr]/[decr], [Array.set] with a
   computed or shared index — still reports. *)

open Parsetree
open Longident

let rule_id = "domain-unsafe-capture"

module SSet = Set.Make (String)

let strip = Ast_util.strip
let pattern_vars = Ast_util.pattern_vars
let flatten_lid = Ast_util.flatten_lid

type ctx = { file : string; mutable findings : Report.finding list }

let report ctx loc message =
  ctx.findings <- Report.mk ~file:ctx.file loc rule_id message :: ctx.findings

type cenv = {
  bound : SSet.t;  (** names the closure itself binds *)
  idx : SSet.t;  (** parallel_for iteration parameters (disjoint slots) *)
  wrappers : SSet.t;  (** local lock-wrapper binding names *)
  protected : bool;
}

let bind env vars =
  { env with bound = List.fold_left (fun s v -> SSet.add v s) env.bound vars }

let is_apply_of names e =
  match (strip e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      List.exists
        (fun (m, f) ->
          match txt with Ldot (Lident m', f') -> m = m' && f = f' | _ -> false)
        names
  | _ -> false

let is_mutex_lock = is_apply_of [ ("Mutex", "lock") ]

let is_mutex_protect fn =
  match fn.pexp_desc with
  | Pexp_ident { txt = Ldot (Lident "Mutex", "protect"); _ } -> true
  | _ -> false

let check_mut_target ctx env loc lhs kind =
  if not env.protected then
    match (strip lhs).pexp_desc with
    | Pexp_ident { txt = Lident x; _ } when not (SSet.mem x env.bound) ->
        report ctx loc
          (Printf.sprintf
             "%s targets `%s`, bound outside this closure, from inside a \
              Parallel pool body; route it through Atomic (or guard with a \
              Mutex) — concurrent domains race on it"
             kind x)
    | Pexp_ident { txt = Ldot _ as p; _ } ->
        report ctx loc
          (Printf.sprintf
             "%s targets module-level state `%s` from inside a Parallel pool \
              body; route it through Atomic (or guard with a Mutex)"
             kind (flatten_lid p))
    | _ -> ()

(* [out.(i) <- …] where [i] is literally a parameter of the
   parallel_for closure: each iteration owns its slot. *)
let disjoint_slot env args =
  match args with
  | _ :: (_, ix) :: _ -> (
      match (strip ix).pexp_desc with
      | Pexp_ident { txt = Lident x; _ } -> SSet.mem x env.idx
      | _ -> false)
  | _ -> false

let rec walk_closure ctx env e =
  match e.pexp_desc with
  | Pexp_let (rf, vbs, body) ->
      let vars = List.concat_map (fun vb -> pattern_vars vb.pvb_pat) vbs in
      let env' = bind env vars in
      let benv = match rf with Asttypes.Recursive -> env' | _ -> env in
      List.iter (fun vb -> walk_closure ctx benv vb.pvb_expr) vbs;
      walk_closure ctx env' body
  | Pexp_fun (_, dflt, pat, body) ->
      Option.iter (walk_closure ctx env) dflt;
      walk_closure ctx (bind env (pattern_vars pat)) body
  | Pexp_function cases -> walk_cases ctx env cases
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk_closure ctx env scrut;
      walk_cases ctx env cases
  | Pexp_for (pat, a, b, _, body) ->
      walk_closure ctx env a;
      walk_closure ctx env b;
      walk_closure ctx (bind env (pattern_vars pat)) body
  | Pexp_sequence (e1, e2) ->
      walk_closure ctx env e1;
      let env2 = if is_mutex_lock e1 then { env with protected = true } else env in
      walk_closure ctx env2 e2
  | Pexp_setfield (tgt, _, v) ->
      check_mut_target ctx env e.pexp_loc tgt "record-field assignment `<-`";
      walk_closure ctx env tgt;
      walk_closure ctx env v
  | Pexp_apply (fn, args) ->
      (match (fn.pexp_desc, args) with
      | Pexp_ident { txt = Lident ":="; _ }, (_, lhs) :: _ ->
          check_mut_target ctx env e.pexp_loc lhs "assignment `:=`"
      | Pexp_ident { txt = Lident (("incr" | "decr") as op); _ }, (_, lhs) :: _
        ->
          check_mut_target ctx env e.pexp_loc lhs ("`" ^ op ^ "` on a ref")
      | ( Pexp_ident
            { txt = Ldot (Lident ("Array" | "Bytes"), ("set" | "unsafe_set")); _ },
          (_, lhs) :: _ ) ->
          if not (disjoint_slot env args) then
            check_mut_target ctx env e.pexp_loc lhs "array-element assignment"
      | _ -> ());
      let lock_wrapped =
        is_mutex_protect fn
        ||
        match fn.pexp_desc with
        | Pexp_ident { txt; _ } ->
            SSet.mem (Ast_util.last_comp txt) env.wrappers
        | _ -> false
      in
      let env' = if lock_wrapped then { env with protected = true } else env in
      walk_closure ctx env' fn;
      List.iter (fun (_, a) -> walk_closure ctx env' a) args
  | _ -> descend ctx env e

and walk_cases ctx env cases =
  List.iter
    (fun c ->
      let env' = bind env (pattern_vars c.pc_lhs) in
      Option.iter (walk_closure ctx env') c.pc_guard;
      walk_closure ctx env' c.pc_rhs)
    cases

and descend ctx env e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ child -> walk_closure ctx env child);
    }
  in
  Ast_iterator.default_iterator.expr it e

(* ---------------------- pre-scans --------------------------------- *)

(* Every let-bound name (any depth) whose rhs is the literal
   [Parallel.create ~domains:1 …]. *)
let seq_pool_names str =
  let acc = ref SSet.empty in
  let from_vbs vbs =
    List.iter
      (fun vb ->
        match pattern_vars vb.pvb_pat with
        | [ v ] when Callgraph.is_seq_pool_create vb.pvb_expr ->
            acc := SSet.add v !acc
        | _ -> ())
      vbs
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_let (_, vbs, _) -> from_vbs vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      structure_item =
        (fun self item ->
          (match item.pstr_desc with
          | Pstr_value (_, vbs) -> from_vbs vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self item);
    }
  in
  it.structure it str;
  !acc

let mentions_mutex e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident
              { txt = Ldot (Lident "Mutex", ("lock" | "protect")); _ } ->
              found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !found

(* Lock wrappers: bindings (any depth) whose own body takes a Mutex —
   the [with_lock t f] idiom. A closure handed to one runs under its
   lock. Matching is by name at the call site, so a same-named
   unlocked function elsewhere in the file would be over-trusted;
   acceptable for a suppression heuristic. *)
let lock_wrapper_names str =
  let acc = ref SSet.empty in
  let from_vbs vbs =
    List.iter
      (fun vb ->
        match pattern_vars vb.pvb_pat with
        | [ v ] when mentions_mutex vb.pvb_expr -> acc := SSet.add v !acc
        | _ -> ())
      vbs
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_let (_, vbs, _) -> from_vbs vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      structure_item =
        (fun self item ->
          (match item.pstr_desc with
          | Pstr_value (_, vbs) -> from_vbs vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self item);
    }
  in
  it.structure it str;
  !acc

(* Transitive closure of [lock_wrapper_names] within one structure: a
   function that does all its work inside [with_mutex t.lock (fun () ->
   …)] is itself a wrapper — a closure handed to it runs under the
   lock — even though no [Mutex.lock] appears literally in its body.
   Wrapper-ness flows through call chains of any depth, iterated to a
   within-file fixpoint. Same name-based matching caveat as
   [lock_wrapper_names]. *)
let lock_wrapper_closure str =
  let binds = ref [] in
  let from_vbs vbs =
    List.iter
      (fun vb ->
        match pattern_vars vb.pvb_pat with
        | [ v ] -> binds := (v, vb.pvb_expr) :: !binds
        | _ -> ())
      vbs
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_let (_, vbs, _) -> from_vbs vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      structure_item =
        (fun self item ->
          (match item.pstr_desc with
          | Pstr_value (_, vbs) -> from_vbs vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self item);
    }
  in
  it.structure it str;
  let applies_one names e =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_apply (f, _) -> (
                match (strip f).pexp_desc with
                | Pexp_ident { txt; _ }
                  when SSet.mem (Ast_util.last_comp txt) names ->
                    found := true
                | _ -> ())
            | _ -> ());
            if not !found then Ast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it e;
    !found
  in
  let set = ref (lock_wrapper_names str) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (v, e) ->
        if (not (SSet.mem v !set)) && applies_one !set e then begin
          set := SSet.add v !set;
          changed := true
        end)
      !binds
  done;
  !set

(* ---------------------- entry ------------------------------------- *)

let pool_entry_points = [ "parallel_for"; "map_array" ]

let findings ~file str =
  let ctx = { file; findings = [] } in
  let seq_pools = seq_pool_names str in
  let wrappers = lock_wrapper_names str in
  let check_pool_apply fn_txt args =
    let entry =
      match fn_txt with
      | Lident f | Ldot (_, f) when List.mem f pool_entry_points -> Some f
      | _ -> None
    in
    match entry with
    | None -> ()
    | Some f ->
        let seq =
          match
            List.filter_map
              (function Asttypes.Nolabel, a -> Some a | _ -> None)
              args
          with
          | p :: _ -> (
              match (strip p).pexp_desc with
              | Pexp_ident { txt = Lident x; _ } -> SSet.mem x seq_pools
              | _ -> false)
          | [] -> false
        in
        if not seq then
          List.iter
            (fun (_, a) ->
              match (strip a).pexp_desc with
              | Pexp_fun _ | Pexp_function _ ->
                  let params, _ = Typestate.peel_params (strip a) in
                  let idx =
                    if f = "parallel_for" then
                      List.fold_left
                        (fun s v -> SSet.add v s)
                        SSet.empty params
                    else SSet.empty
                  in
                  walk_closure ctx
                    { bound = SSet.empty; idx; wrappers; protected = false }
                    (strip a)
              | _ -> ())
            args
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
              check_pool_apply txt args
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  ctx.findings
