(* unlocked-publish: snapshot publication, or copy-on-write successor
   construction, not dominated by the writer mutex.

   The MVCC write protocol is single-writer: take the writer lock,
   build the successor, publish, release. A publication ([Atomic.set
   _.current v]) or a successor construction ([Snapshot.next …], a
   cross-module [with_*] call) outside the lock lets two writers
   interleave — each forks from the same predecessor and one
   generation is silently lost. Lock domination reuses the lockset
   machinery: [Mutex.lock]/[Mutex.protect] in scope, the transitive
   same-file lock-wrapper closure, and callee summaries
   ([sm_wrapper]) for closures run under a callee's lock; the alias
   evaluator threads that protection bit to every event it records.

   The rule only considers files containing a direct publication site
   — successor construction in a file that never publishes (helpers,
   benches replaying generations) is not a write-protocol step. *)

let rule_id = "unlocked-publish"

let findings (al : Alias.t) =
  List.concat_map
    (fun (sf : Alias.source_file) ->
      let file = sf.Alias.af_file.Project.path in
      let analyses =
        List.map
          (fun (name, body, bloc) ->
            (name, bloc, Alias.analyze_binding al sf body))
          sf.Alias.af_bindings
      in
      let has_publication =
        List.exists
          (fun (_, _, an) ->
            List.exists
              (function
                | Alias.Publish { p_direct = true; _ } -> true
                | _ -> false)
              an.Alias.an_events)
          analyses
      in
      if not has_publication then []
      else
        List.concat_map
          (fun (name, bloc, an) ->
            let own_name = Alias.last_dot name in
            let entered =
              Report.rel ~file bloc
                (Printf.sprintf "unprotected path enters `%s` here" own_name)
            in
            List.filter_map
              (function
                | Alias.Publish { p_loc; p_guarded = false; p_direct = true }
                  ->
                    Some
                      (Report.mk ~file p_loc rule_id
                         "snapshot publication is not dominated by the \
                          writer mutex; concurrent writers can interleave \
                          and lose a generation — publish inside the writer \
                          lock"
                         ~related:[ entered ])
                | Alias.Ctor
                    { k_loc; k_kind; k_what; k_guarded = false; _ }
                  when k_kind = `Succ
                       || Alias.last_dot k_what = "next" ->
                    Some
                      (Report.mk ~file k_loc rule_id
                         (Printf.sprintf
                            "copy-on-write successor `%s` constructed \
                             outside the writer mutex; racing writers fork \
                             the generation history — construct and publish \
                             under the same lock"
                            k_what)
                         ~related:[ entered ])
                | _ -> None)
              an.Alias.an_events)
          analyses)
    al.Alias.al_files
