(* Generic monotone-framework engine.

   The protocol analyses (Genproto, Budget_loop) need interprocedural
   summaries computed to a fixpoint over the {!Callgraph}: "does every
   path through this node bump the generation", "may this node reach
   an evaluation", and so on. Each of those is an instance of the same
   shape — a finite set of nodes, a lattice of facts, and a monotone
   transfer function that reads the facts of the nodes it depends on —
   so the worklist machinery lives here once, parameterised over the
   lattice.

   Semantics: [solve] computes the least map [fact] (starting from
   [init]) satisfying [fact.(n) = transfer ~get n] for every node,
   where [get] reads the current assignment. Dependencies are declared
   up front ([deps n] = the nodes whose facts [transfer] for [n]
   reads); when a node's fact changes, every dependent is re-queued.
   Facts only move up the lattice: a [transfer] result is always
   joined with the previous fact, so a non-monotone transfer degrades
   to an over-approximation instead of an oscillation. After
   [widen_after] changes to the same node, [widen] replaces [join] —
   lattices of unbounded height (interval-style domains) still
   terminate provided [widen] stabilises; finite lattices can leave
   [widen = join].

   May-analyses run directly ("false" at bottom, join = or).
   Must-analyses ("every path checks the budget") are run as their
   dual: encode the fact as "some path misses the check" and join with
   or — the framework itself only ever climbs. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old next]: accelerated join; for finite lattices simply
      [join]. *)
end

(** The two-point may-lattice, and the workhorse of the summaries. *)
module Bool : LATTICE with type t = bool = struct
  type t = bool

  let equal = Bool.equal
  let join = ( || )
  let widen = ( || )
end

(** Finite powerset lattice as a bitset: join = union. Used by the
    QCheck properties to randomise over genuinely partial orders. *)
module Bits : LATTICE with type t = int = struct
  type t = int

  let equal = Int.equal
  let join = ( lor )
  let widen = ( lor )
end

module Solve (L : LATTICE) = struct
  type stats = { iterations : int; widenings : int }

  (* [solve ~n ~deps ~init ~transfer ()] — facts for nodes [0..n-1].
     [transfer ~get i] must only call [get] on members of [deps i];
     reading anything else computes a fixpoint over stale values (the
     dependency is invisible to the worklist). *)
  let solve ?(widen_after = 8) ~n ~deps ~init ~transfer () =
    let fact = Array.init n init in
    let bumps = Array.make n 0 in
    (* Reverse dependency index: who must re-run when [i] changes. *)
    let dependents = Array.make n [] in
    for i = 0 to n - 1 do
      List.iter
        (fun d ->
          if d >= 0 && d < n then dependents.(d) <- i :: dependents.(d))
        (deps i)
    done;
    let queued = Array.make n false in
    let queue = Queue.create () in
    let enqueue i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    for i = 0 to n - 1 do
      enqueue i
    done;
    let iterations = ref 0 in
    let widenings = ref 0 in
    let get i = fact.(i) in
    while not (Queue.is_empty queue) do
      let i = Queue.take queue in
      queued.(i) <- false;
      incr iterations;
      let proposed = transfer ~get i in
      let next =
        if bumps.(i) >= widen_after then begin
          let w = L.widen fact.(i) proposed in
          if not (L.equal w fact.(i)) then incr widenings;
          w
        end
        else L.join fact.(i) proposed
      in
      if not (L.equal next fact.(i)) then begin
        fact.(i) <- next;
        bumps.(i) <- bumps.(i) + 1;
        List.iter enqueue dependents.(i)
      end
    done;
    (fact, { iterations = !iterations; widenings = !widenings })
end

module Bool_solver = Solve (Bool)
module Bits_solver = Solve (Bits)

(* ------------------------------------------------------------------ *)
(* Callgraph-indexed boolean summaries                                *)
(* ------------------------------------------------------------------ *)

(* Most protocol summaries are boolean facts over callgraph nodes with
   call edges as dependencies. This helper handles the indexing
   chore: nodes are deduplicated by {!Callgraph.node} (a node split
   across [and]-bindings contributes every body), and the returned
   lookup is total (unknown nodes read as [seed]'s default). *)
let node_summary (cg : Callgraph.t) ~seed ~via =
  let index = Hashtbl.create 256 in
  let nodes = ref [] in
  let count = ref 0 in
  List.iter
    (fun (fn : Callgraph.fn) ->
      if not (Hashtbl.mem index fn.Callgraph.f_node) then begin
        Hashtbl.add index fn.Callgraph.f_node !count;
        nodes := fn.Callgraph.f_node :: !nodes;
        incr count
      end)
    cg.Callgraph.cg_fns;
  let n = !count in
  let node_arr =
    Array.make (max n 1) Callgraph.{ n_lib = ""; n_mod = ""; n_val = "" }
  in
  List.iteri (fun i nd -> node_arr.(n - 1 - i) <- nd) !nodes;
  let deps_of i =
    let nd = node_arr.(i) in
    List.concat_map
      (fun (fn : Callgraph.fn) ->
        List.filter_map
          (fun (x : Callgraph.xref) ->
            if x.Callgraph.x_usage_only then None
            else Hashtbl.find_opt index x.Callgraph.x_target)
          fn.Callgraph.f_refs)
      (Callgraph.fns_of cg nd)
  in
  let transfer ~get i =
    let nd = node_arr.(i) in
    let bodies = Callgraph.fns_of cg nd in
    seed bodies
    || List.exists
         (fun (fn : Callgraph.fn) ->
           List.exists
             (fun (x : Callgraph.xref) ->
               (not x.Callgraph.x_usage_only)
               &&
               match Hashtbl.find_opt index x.Callgraph.x_target with
               | Some j -> via fn x && get j
               | None -> false)
             fn.Callgraph.f_refs)
         bodies
  in
  let fact, _stats =
    if n = 0 then ([||], Bool_solver.{ iterations = 0; widenings = 0 })
    else
      Bool_solver.solve ~n ~deps:deps_of
        ~init:(fun i -> seed (Callgraph.fns_of cg node_arr.(i)))
        ~transfer ()
  in
  fun node ->
    match Hashtbl.find_opt index node with
    | Some i -> fact.(i)
    | None -> false

(* ------------------------------------------------------------------ *)
(* Round-based global fixpoints                                       *)
(* ------------------------------------------------------------------ *)

(* The summary-table analyses (generation-protocol, alias/escape) are
   not node-indexed: they recompute a whole [(string, summary)] table
   per round in definition order and rely on bounded rounds rather
   than a worklist. [stabilise] owns that driver once: run [step] up
   to [rounds] times, stopping early when two consecutive [snapshot]s
   are [equal]. Returns the number of rounds actually run (useful for
   tests asserting convergence). A monotone [step] over a finite
   domain converges; a non-monotone one merely stops at the round
   cap — degradation matches [Solve]'s join-with-previous spirit. *)
let stabilise ~rounds ~equal ~snapshot step =
  let rec go i prev =
    if i >= rounds then i
    else begin
      step ();
      let cur = snapshot () in
      match prev with
      | Some p when equal p cur -> i + 1
      | _ -> go (i + 1) (Some cur)
    end
  in
  go 0 None
