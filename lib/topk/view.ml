type view = { reference : Geom.Vec.t; order : (float * int) array }

type t = { data : Geom.Vec.t array; views : view array; radius : float }

let build ~views data =
  if views = [] then invalid_arg "View.build: no views";
  let d = if Array.length data = 0 then 0 else Geom.Vec.dim data.(0) in
  List.iter
    (fun v ->
      if Geom.Vec.dim v <> d then invalid_arg "View.build: arity mismatch")
    views;
  let radius =
    Array.fold_left (fun acc p -> Float.max acc (Geom.Vec.norm p)) 0. data
  in
  let materialize reference =
    let order =
      Array.init (Array.length data) (fun id ->
          (Geom.Vec.dot reference data.(id), id))
    in
    Array.sort compare order;
    { reference; order }
  in
  { data; views = Array.of_list (List.map materialize views); radius }

let view_count t = Array.length t.views

let better (s1, i1) (s2, i2) = s1 < s2 || (s1 = s2 && i1 < i2)

let top_k_stats t ~weights ~k =
  let n = Array.length t.data in
  let cap = Int.min k n in
  if cap = 0 then ([], 0)
  else begin
    (* Nearest view by Euclidean distance of the weight vectors. *)
    let view =
      Array.fold_left
        (fun best v ->
          if
            Geom.Vec.dist v.reference weights
            < Geom.Vec.dist best.reference weights
          then v
          else best)
        t.views.(0) t.views
    in
    let slack = Geom.Vec.dist view.reference weights *. t.radius in
    let best = ref [] in
    let insert entry =
      let rec ins = function
        | [] -> [ entry ]
        | e :: rest ->
            if better entry e then entry :: e :: rest else e :: ins rest
      in
      let merged = ins !best in
      best :=
        if List.length merged > cap then
          List.filteri (fun i _ -> i < cap) merged
        else merged
    in
    let kth () =
      if List.length !best < cap then infinity
      else
        match List.nth_opt !best (cap - 1) with
        | Some (score, _) -> score
        | None -> infinity
    in
    let scanned = ref 0 in
    (try
       Array.iter
         (fun (vscore, id) ->
           (* Lower bound on any remaining object's w-score. *)
           if vscore -. slack > kth () then raise Exit;
           incr scanned;
           insert (Geom.Vec.dot weights t.data.(id), id))
         view.order
     with Exit -> ());
    (List.map snd !best, !scanned)
  end

let top_k t ~weights ~k = fst (top_k_stats t ~weights ~k)

let size_words t =
  Array.fold_left (fun acc v -> acc + (2 * Array.length v.order)) 0 t.views
