type t = {
  data : Geom.Vec.t array;
  sorted : (float * int) array array; (* per dimension, ascending *)
}

let build data =
  let n = Array.length data in
  let d = if n = 0 then 0 else Geom.Vec.dim data.(0) in
  let sorted =
    Array.init d (fun j ->
        let col = Array.init n (fun id -> (data.(id).(j), id)) in
        Array.sort compare col;
        col)
  in
  { data; sorted }

let dim t = Array.length t.sorted

let better (s1, i1) (s2, i2) = s1 < s2 || (s1 = s2 && i1 < i2)

let top_k_stats t ~weights ~k =
  let d = dim t in
  if Geom.Vec.dim weights <> d then invalid_arg "Ta.top_k: arity mismatch";
  Array.iter
    (fun w -> if w < 0. then invalid_arg "Ta.top_k: negative weight")
    weights;
  let n = Array.length t.data in
  let cap = Int.min k n in
  if cap = 0 || d = 0 then ([], 0)
  else begin
    let seen = Hashtbl.create 64 in
    let best = ref [] (* sorted ascending, length <= cap *) in
    let insert entry =
      let rec ins = function
        | [] -> [ entry ]
        | e :: rest -> if better entry e then entry :: e :: rest else e :: ins rest
      in
      let merged = ins !best in
      best :=
        if List.length merged > cap then
          List.filteri (fun i _ -> i < cap) merged
        else merged
    in
    let kth_score () =
      if List.length !best < cap then infinity
      else
        match List.nth_opt !best (cap - 1) with
        | Some (score, _) -> score
        | None -> infinity
    in
    let depth = ref 0 in
    (try
       while !depth < n do
         let threshold = ref 0. in
         for j = 0 to d - 1 do
           let v, id = t.sorted.(j).(!depth) in
           threshold := !threshold +. (weights.(j) *. v);
           if not (Hashtbl.mem seen id) then begin
             Hashtbl.add seen id ();
             insert (Geom.Vec.dot weights t.data.(id), id)
           end
         done;
         incr depth;
         if kth_score () < !threshold then raise Exit
       done
     with Exit -> ());
    (List.map snd !best, !depth)
  end

let top_k t ~weights ~k = fst (top_k_stats t ~weights ~k)
