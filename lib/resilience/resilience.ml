(* Budgets and deterministic fault injection. See the .mli for the
   contracts; the implementation notes here are about lock-freedom and
   determinism. *)

(* Wall clock with a monotonic guard: [Unix.gettimeofday] can step
   backwards (NTP); deadlines must not. Every read CASes the latest
   value into [last] and returns the max, so no domain ever observes
   time running in reverse. *)
let last_ms = Atomic.make 0.

let now_ms () =
  let t = Unix.gettimeofday () *. 1000. in
  let rec bump () =
    let seen = Atomic.get last_ms in
    if t <= seen then seen
    else if Atomic.compare_and_set last_ms seen t then t
    else bump ()
  in
  bump ()

module Budget = struct
  type token = bool Atomic.t

  let token () = Atomic.make false
  let cancel tok = Atomic.set tok true
  let is_cancelled tok = Atomic.get tok

  type trip =
    | Deadline of { elapsed_ms : float }
    | Steps of { used : int; limit : int }
    | Cancelled

  type t = {
    started_ms : float;
    deadline_ms : float option;
    max_steps : int option;
    tok : token option;
    steps : int Atomic.t;
    trip : trip option Atomic.t;
    probe : int Atomic.t;
        (* deadline checks are throttled: only every 16th check reads
           the clock (a syscall plus a contended CAS — measurably
           expensive when every candidate evaluation checks). The
           first check always probes, so a pre-expired deadline trips
           immediately; otherwise a trip is observed at most 15 checks
           late, which cooperative cancellation tolerates by design. *)
  }

  let unlimited =
    {
      started_ms = 0.;
      deadline_ms = None;
      max_steps = None;
      tok = None;
      steps = Atomic.make 0;
      trip = Atomic.make None;
      probe = Atomic.make 0;
    }

  let create ?deadline_ms ?max_steps ?token () =
    {
      started_ms = now_ms ();
      deadline_ms;
      max_steps;
      tok = token;
      steps = Atomic.make 0;
      trip = Atomic.make None;
      probe = Atomic.make 0;
    }

  let step t n = ignore (Atomic.fetch_and_add t.steps n)
  let steps_used t = Atomic.get t.steps
  let elapsed_ms t = now_ms () -. t.started_ms

  (* First trip wins: losers of the CAS adopt the winner's trip, so
     every domain reports the same cause. *)
  let record t tr =
    ignore (Atomic.compare_and_set t.trip None (Some tr));
    Atomic.get t.trip

  let check t =
    match Atomic.get t.trip with
    | Some _ as tripped -> tripped
    | None -> (
        let over =
          match t.tok with
          | Some tok when Atomic.get tok -> Some Cancelled
          | _ -> (
              match t.max_steps with
              | Some limit when Atomic.get t.steps >= limit ->
                  Some (Steps { used = Atomic.get t.steps; limit })
              | _ -> (
                  match t.deadline_ms with
                  | None -> None
                  | Some dl ->
                      if Atomic.fetch_and_add t.probe 1 land 15 <> 0 then
                        None
                      else
                        let e = elapsed_ms t in
                        if e >= dl then Some (Deadline { elapsed_ms = e })
                        else None))
        in
        match over with None -> None | Some tr -> record t tr)

  let live t = match check t with None -> true | Some _ -> false
  let tripped t = Atomic.get t.trip

  let trip_to_string = function
    | Deadline { elapsed_ms } ->
        Printf.sprintf "deadline exceeded after %.1f ms" elapsed_ms
    | Steps { used; limit } ->
        Printf.sprintf "step budget exhausted (%d of %d)" used limit
    | Cancelled -> "cancelled"
end

module Fault = struct
  type kind = Exn | Transient | Latency of float | Torn

  exception Injected of { site : string; transient : bool }

  exception Torn_write of { site : string; frac : float }

  type rule = { pattern : string; kind : kind; p : float }

  type t = {
    seed : int;
    rules : rule list;
    lock : Mutex.t;
    counters : (string, int ref) Hashtbl.t;
    n_consults : int Atomic.t;
    n_injections : int Atomic.t;
  }

  let make ?(seed = 0) rules =
    {
      seed;
      rules =
        List.map (fun (pattern, kind, p) -> { pattern; kind; p }) rules;
      lock = Mutex.create ();
      counters = Hashtbl.create 8;
      n_consults = Atomic.make 0;
      n_injections = Atomic.make 0;
    }

  let seed t = t.seed
  let consults t = Atomic.get t.n_consults
  let injections t = Atomic.get t.n_injections

  let matches ~pattern site =
    let lp = String.length pattern in
    if lp > 0 && pattern.[lp - 1] = '*' then
      let prefix = String.sub pattern 0 (lp - 1) in
      let lpre = String.length prefix in
      String.length site >= lpre && String.sub site 0 lpre = prefix
    else String.equal pattern site

  let rule_for t site =
    List.find_opt (fun r -> matches ~pattern:r.pattern site) t.rules

  (* The schedule: consult [n] of [site] draws from a throwaway Rng
     seeded by (seed, site, n). [Hashtbl.hash] is deterministic across
     runs for (int, string, int) triples, so the decision depends only
     on those three values — never on domain interleaving. *)
  let draw t site n =
    Workload.Rng.uniform
      (Workload.Rng.make (t.seed lxor Hashtbl.hash (t.seed, site, n)))

  let decide t r site n = draw t site n < r.p

  (* The kill point of a torn write: a second independent deterministic
     draw from the same (seed, site, n) triple, so the fraction of the
     record that survives the simulated crash is as reproducible as the
     decision to crash at all. *)
  let torn_frac t site n =
    Workload.Rng.uniform
      (Workload.Rng.make (t.seed lxor Hashtbl.hash (site, t.seed, n, 1)))

  let would_inject t ~site ~n =
    match rule_for t site with None -> false | Some r -> decide t r site n

  let next_consult t site =
    Mutex.lock t.lock;
    let counter =
      match Hashtbl.find_opt t.counters site with
      | Some c -> c
      | None ->
          let c = ref 0 in
          Hashtbl.add t.counters site c;
          c
    in
    let n = !counter in
    incr counter;
    Mutex.unlock t.lock;
    n

  let transient_exn = function
    | Injected { transient; _ } -> transient
    | _ -> false

  let point opt ~site =
    match opt with
    | None -> ()
    | Some t -> (
        match rule_for t site with
        | None -> ()
        | Some r ->
            Atomic.incr t.n_consults;
            let n = next_consult t site in
            if decide t r site n then begin
              Atomic.incr t.n_injections;
              match r.kind with
              | Latency ms -> if ms > 0. then Unix.sleepf (ms /. 1000.)
              | Exn -> raise (Injected { site; transient = false })
              | Transient -> raise (Injected { site; transient = true })
              | Torn -> raise (Torn_write { site; frac = torn_frac t site n })
            end)

  (* --- IQ_FAULT spec parsing ---------------------------------------
     seed=42;backend.ese.prepare:exn@0.5;index.*:latency(2)@0.1;pool.task:transient *)

  let ( let* ) = Result.bind

  let parse_prob s =
    match float_of_string_opt (String.trim s) with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | Some _ | None -> Error (Printf.sprintf "bad probability %S" s)

  let parse_kind s =
    let s = String.trim s in
    match s with
    | "exn" -> Ok Exn
    | "transient" -> Ok Transient
    | "torn" -> Ok Torn
    | _ ->
        let l = String.length s in
        if l > 9 && String.sub s 0 8 = "latency(" && s.[l - 1] = ')' then
          match float_of_string_opt (String.sub s 8 (l - 9)) with
          | Some ms when ms >= 0. -> Ok (Latency ms)
          | Some _ | None -> Error (Printf.sprintf "bad latency %S" s)
        else Error (Printf.sprintf "unknown fault kind %S" s)

  let parse_clause clause =
    let clause = String.trim clause in
    match String.index_opt clause ':' with
    | None -> Error (Printf.sprintf "clause %S needs site:kind" clause)
    | Some i ->
        let site = String.trim (String.sub clause 0 i) in
        if site = "" then Error (Printf.sprintf "clause %S has no site" clause)
        else
          let rest = String.sub clause (i + 1) (String.length clause - i - 1) in
          let* kind, p =
            match String.index_opt rest '@' with
            | None ->
                let* k = parse_kind rest in
                Ok (k, 1.)
            | Some j ->
                let* k = parse_kind (String.sub rest 0 j) in
                let* p =
                  parse_prob
                    (String.sub rest (j + 1) (String.length rest - j - 1))
                in
                Ok (k, p)
          in
          Ok (`Rule (site, kind, p))

  let of_spec spec =
    let clauses =
      String.split_on_char ';' spec
      |> List.map String.trim
      |> List.filter (fun c -> c <> "")
    in
    if clauses = [] then Error "empty fault spec"
    else
      let* seed, rules =
        List.fold_left
          (fun acc clause ->
            let* seed, rules = acc in
            let l = String.length clause in
            if l >= 5 && String.sub clause 0 5 = "seed=" then
              match int_of_string_opt (String.sub clause 5 (l - 5)) with
              | Some s -> Ok (s, rules)
              | None -> Error (Printf.sprintf "bad seed in %S" clause)
            else
              let* (`Rule r) = parse_clause clause in
              Ok (seed, r :: rules))
          (Ok (0, []))
          clauses
      in
      Ok (make ~seed (List.rev rules))

  let of_env () =
    match Workload.Config.fault () with
    | None -> Ok None
    | Some spec -> (
        match of_spec spec with
        | Ok t -> Ok (Some t)
        | Error msg -> Error msg)
end
