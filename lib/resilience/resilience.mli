(** Request budgets and deterministic fault injection for the serving
    layer.

    This library is the resilience substrate of {!Iq.Engine}: a
    {!Budget} bounds a request by wall-clock deadline, evaluation-step
    budget and a cooperative cancellation token, and a {!Fault}
    schedule injects failures at named sites so chaos tests are
    byte-reproducible from a seed. It deliberately depends only on
    [workload] (for {!Workload.Rng} and {!Workload.Config}) and [unix]
    (for the clock) — the search layers thread budgets {e down} and
    the engine converts trips into typed errors {e up}, so nothing
    here knows about strategies or evaluators. *)

val now_ms : unit -> float
(** Milliseconds from an arbitrary process-local origin. Backed by
    [Unix.gettimeofday] with a monotonic guard: successive calls never
    observe time going backwards (a wall-clock step back is clamped to
    the latest value seen by any domain). *)

(** A per-request budget: deadline, step limit and cancellation,
    checked cooperatively at loop and chunk boundaries.

    {b Trip semantics.} A budget is {e sticky}: the first {!check}
    that observes an exceeded limit records a {!trip}, and every later
    check returns that same trip — concurrent checkers from several
    pool domains agree on a single cause. Checks are designed to cost
    a few atomic reads (and at most one clock read) so the clean path
    stays well under the documented 2% overhead budget. *)
module Budget : sig
  type token
  (** A cooperative cancellation flag, shareable across domains. *)

  val token : unit -> token

  val cancel : token -> unit
  (** Request cancellation: every budget carrying this token trips
      [Cancelled] at its next check. Idempotent. *)

  val is_cancelled : token -> bool

  type trip =
    | Deadline of { elapsed_ms : float }
        (** wall-clock deadline exceeded; [elapsed_ms] measured at the
            tripping check *)
    | Steps of { used : int; limit : int }
        (** evaluation-step budget exhausted *)
    | Cancelled  (** the token was cancelled *)

  type t

  val create :
    ?deadline_ms:float -> ?max_steps:int -> ?token:token -> unit -> t
  (** A fresh budget whose clock starts now. A negative [deadline_ms]
      or non-positive [max_steps] trips at the first check. Omitted
      limits are unenforced. *)

  val unlimited : t
  (** The shared never-tripping budget: no deadline, no step limit, no
      token. Search layers default to it so the unbudgeted path pays
      only its (few-atomic-read) checks. *)

  val step : t -> int -> unit
  (** Record [n] evaluation steps (candidate hit-count evaluations in
      the searches). Never trips by itself — the next {!check} does. *)

  val steps_used : t -> int

  val elapsed_ms : t -> float
  (** Milliseconds since {!create}. Meaningless for {!unlimited}. *)

  val check : t -> trip option
  (** [None] while within budget. Checked in order: cancellation, then
      steps, then deadline — so a simultaneously cancelled and expired
      budget deterministically reports [Cancelled]. Sticky (see
      above). Deadline checks throttle the clock read to every 16th
      check (the first check always reads, so a pre-expired deadline
      trips immediately); a wall-clock trip may therefore be observed
      up to 15 checks late — cooperative budgets tolerate that by
      design, and step/cancellation checks are never throttled. *)

  val live : t -> bool
  (** [check t = None]. *)

  val tripped : t -> trip option
  (** The recorded trip, without re-checking limits. *)

  val trip_to_string : trip -> string
end

(** Deterministic fault injection: a seeded schedule of failures that
    instrumented code consults at named sites.

    {b Site naming.} Sites are dotted lowercase paths,
    [layer.component.event]: the engine consults
    [backend.<name>.prepare] and [backend.<name>.eval], index
    construction consults [index.build], the searches consult
    [search.iteration], pool tasks consult [pool.task] at chunk
    boundaries, and the durability layer consults [wal.append],
    [wal.fsync], [checkpoint.write] and [checkpoint.rename] (see
    [Durable]). Rules match a site exactly or by a trailing-[*]
    prefix wildcard.

    {b Determinism.} Whether the [n]-th consult of a site injects is a
    pure function of [(seed, site, n)] — each site keeps its own
    consult counter, so the schedule does not depend on how consults
    from different sites interleave across domains. Same seed and
    spec, same per-site schedule, every run. *)
module Fault : sig
  type kind =
    | Exn  (** raise {!Injected} with [transient = false] *)
    | Transient
        (** raise {!Injected} with [transient = true] — the engine's
            retry-with-backoff class *)
    | Latency of float  (** sleep that many milliseconds, then return *)
    | Torn
        (** raise {!Torn_write} — the kill-mid-write mode for durable
            I/O sites: the consulting writer must persist only
            [frac] of the bytes it was about to write and then die,
            simulating a crash that tears the record *)

  exception Injected of { site : string; transient : bool }
  (** The process-death/latency exception raised from {!point}. The
      engine maps it to retries, fallbacks or [Error (Internal _)] —
      it must never cross the serving boundary raw. *)

  exception Torn_write of { site : string; frac : float }
  (** Raised by a [Torn] rule. [frac] (in [0,1), a pure function of
      (seed, site, consult number) like the schedule itself) tells the
      instrumented writer where to cut: it should write
      [floor (frac *. length)] bytes of its payload, flush, and then
      treat the process as dead (abort the operation). Only the WAL
      consults torn rules; everywhere else the exception is handled
      like a persistent {!Injected}. *)

  type t

  val make : ?seed:int -> (string * kind * float) list -> t
  (** [make ~seed rules] with rules [(site_pattern, kind, probability)];
      the first matching rule decides a site's behaviour. *)

  val of_spec : string -> (t, string) result
  (** Parse an [IQ_FAULT] spec:
      [seed=42;backend.ese.prepare:exn@0.5;index.*:latency(2)@0.1;pool.task:transient]
      — semicolon-separated clauses; each is [seed=N] or
      [site:kind\[@probability\]] with kind [exn], [transient],
      [latency(MS)] or [torn] and probability defaulting to [1]. *)

  val of_env : unit -> (t option, string) result
  (** [Workload.Config.fault ()] parsed with {!of_spec};
      [Ok None] when [IQ_FAULT] is unset or empty. *)

  val seed : t -> int

  val point : t option -> site:string -> unit
  (** Consult the schedule at [site]: no-op on [None] (the fast path —
      uninstrumented production runs pay one branch) and on sites no
      rule matches; otherwise draw the site's next scheduled decision
      and inject latency or raise {!Injected}. *)

  val transient_exn : exn -> bool
  (** Whether an exception is an injected transient failure (the class
      the engine retries with backoff). *)

  val would_inject : t -> site:string -> n:int -> bool
  (** The schedule itself: whether consult number [n] (0-based) of
      [site] injects. Pure — does not advance counters; chaos tests
      use it to assert byte-reproducibility. *)

  val consults : t -> int
  (** Total rule-matched consults so far. *)

  val injections : t -> int
  (** Total faults actually injected (including latency). *)
end
