(** A durable directory attached to a live engine — the entry point
    application code uses.

    {!attach} makes an engine durable in one call: it creates the
    directory if needed, guarantees a complete checkpoint exists
    (writing an initial one for a fresh directory, so recovery always
    has a base image), opens the write-ahead log for appending and
    installs the engine's journal. From then on every acknowledged
    mutation has a CRC-framed record on disk {e before} its snapshot
    is published, and a checkpoint — automatic per
    [IQ_CHECKPOINT_EVERY], or forced via {!checkpoint} — atomically
    persists the current snapshot and truncates the log.

    Typical lifecycles:
    {v
    fresh:     Engine.create → Store.attach ~dir → mutate/serve …
    restart:   Recovery.replay dir → Store.attach ~dir
                 ~replayed_records:report.r_replayed → serve on
    v}

    Only linear-utility engines can attach (checkpoints cannot
    serialise feature-map closures); the error is typed, not raised. *)

type t

val attach :
  ?sync:Wal.sync ->
  ?every:int ->
  ?fault:Resilience.Fault.t ->
  ?replayed_records:int ->
  dir:string ->
  Iq.Engine.t ->
  (t, Iq.Engine.Error.t) result
(** Attach durability to an engine. [sync] defaults to the
    [IQ_WAL_SYNC] knob, [every] to [IQ_CHECKPOINT_EVERY], [fault] to
    the [IQ_FAULT] schedule (its [wal.*]/[checkpoint.*] sites drive
    the crash-fault tests; a malformed spec is [Error (Fault_spec _)]).
    [replayed_records] carries a recovery report's count into
    [Iq.Engine.stats]. Attaching over a directory that already has a
    checkpoint adopts it — use [Recovery.replay] first if the engine
    must be rebuilt {e from} that state. *)

val checkpoint : t -> (unit, Iq.Engine.Error.t) result
(** Force a checkpoint now ([Iq.Engine.checkpoint] on the attached
    engine): snapshot persisted atomically, log truncated. *)

val detach : t -> unit
(** Stop journaling and close the log. The directory stays valid for
    a later [Recovery.replay] or {!attach}. *)

val dir : t -> string

val wal : t -> Wal.t
(** The underlying log handle (tests inspect its {!Wal.size}). *)

val engine : t -> Iq.Engine.t
