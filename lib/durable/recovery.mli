(** Crash recovery: checkpoint + log tail → a serving engine.

    {!replay} reads the directory's checkpoint, scans the log, repairs
    it (drops a torn tail, and everything after a corrupt frame, from
    the file), rebuilds the checkpointed instance and re-executes every
    log record above the checkpoint generation through
    [Iq.Engine.apply_mutation] — the same validated code paths the
    original mutations took. The recovered engine is byte-identical to
    a fresh engine fed the durable mutation prefix: same generation,
    same hit counts, same search results.

    Damage never surfaces as a raw exception: a torn tail is expected
    after a mid-append crash and is reported in the {!report}; a
    mid-log checksum failure recovers everything before it and reports
    [Iq.Engine.Error.Wal_corrupt] with the byte offset. Only a missing
    or unreadable checkpoint fails recovery outright. *)

type report = {
  r_checkpoint_generation : int;  (** generation the checkpoint was taken at *)
  r_replayed : int;  (** log records re-executed *)
  r_skipped : int;
      (** records at or below the checkpoint generation — left by a
          crash between checkpoint publish and log reset; skipping
          them is the double-apply guard *)
  r_torn_at : int option;  (** partial final frame dropped at this offset *)
  r_corrupt : Iq.Engine.Error.t option;
      (** [Wal_corrupt] when a complete frame failed its checksum; the
          intact prefix was still recovered *)
  r_wal_bytes : int;  (** log bytes retained after repair *)
}

val pp_report : Format.formatter -> report -> unit

val replay :
  ?backend:Iq.Engine.backend ->
  ?resilience:Iq.Engine.resilience ->
  ?prune:bool ->
  ?pool:Parallel.pool ->
  string ->
  (Iq.Engine.t * report, Iq.Engine.Error.t) result
(** Recover from a durable directory. The engine options mirror
    [Iq.Engine.create] (they configure the rebuilt engine; they are
    not persisted state). Reattach durability afterwards with
    [Store.attach ~replayed_records:report.r_replayed] — replay itself
    leaves the directory closed. *)
