(* Versioned binary codec for journal payloads. Everything is
   little-endian and fixed-width: a payload is
   [u8 version | u32 generation | u8 tag | body], floats travel as
   their IEEE-754 bit patterns, so encode/decode round-trips are exact
   (no printf/parse detour). Framing (length + checksum) is [Wal]'s
   job — this module only sees payload strings. *)

let version = 1

(* --- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ----------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF

(* --- primitive writers --------------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u32 b v =
  put_u8 b v;
  put_u8 b (v lsr 8);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 24)

let put_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let put_vec b (v : Geom.Vec.t) =
  put_u32 b (Array.length v);
  Array.iter (put_f64 b) v

(* --- primitive readers --------------------------------------------- *)

exception Malformed of string

let get_u8 s pos =
  if !pos >= String.length s then raise (Malformed "truncated payload");
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_u32 s pos =
  let a = get_u8 s pos in
  let b = get_u8 s pos in
  let c = get_u8 s pos in
  let d = get_u8 s pos in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

(* ids may be negative (queries default to id -1): u32 on the wire,
   sign-extended back. *)
let get_i32 s pos =
  let v = get_u32 s pos in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let get_f64 s pos =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits
        (Int64.shift_left (Int64.of_int (get_u8 s pos)) (8 * i))
  done;
  Int64.float_of_bits !bits

let get_vec s pos =
  let n = get_u32 s pos in
  if n < 0 || n > (String.length s - !pos) / 8 then
    raise (Malformed "vector length out of range");
  Array.init n (fun _ -> get_f64 s pos)

(* --- mutation payloads --------------------------------------------- *)

let tag_of = function
  | Iq.Engine.M_add_object _ -> 0
  | Iq.Engine.M_update_object _ -> 1
  | Iq.Engine.M_remove_object _ -> 2
  | Iq.Engine.M_add_query _ -> 3
  | Iq.Engine.M_remove_query _ -> 4

let encode ~generation m =
  let b = Buffer.create 64 in
  put_u8 b version;
  put_u32 b generation;
  put_u8 b (tag_of m);
  (match m with
  | Iq.Engine.M_add_object raw -> put_vec b raw
  | Iq.Engine.M_update_object { id; raw } ->
      put_u32 b id;
      put_vec b raw
  | Iq.Engine.M_remove_object id -> put_u32 b id
  | Iq.Engine.M_add_query q ->
      put_u32 b q.Topk.Query.id;
      put_u32 b q.Topk.Query.k;
      put_vec b q.Topk.Query.weights
  | Iq.Engine.M_remove_query q -> put_u32 b q);
  Buffer.contents b

let decode s =
  let pos = ref 0 in
  try
    let v = get_u8 s pos in
    if v <> version then
      Error (Printf.sprintf "unsupported payload version %d" v)
    else begin
      let generation = get_u32 s pos in
      let m =
        match get_u8 s pos with
        | 0 -> Iq.Engine.M_add_object (get_vec s pos)
        | 1 ->
            let id = get_u32 s pos in
            Iq.Engine.M_update_object { id; raw = get_vec s pos }
        | 2 -> Iq.Engine.M_remove_object (get_u32 s pos)
        | 3 ->
            let id = get_i32 s pos in
            let k = get_u32 s pos in
            let weights = get_vec s pos in
            Iq.Engine.M_add_query (Topk.Query.make ~id ~k weights)
        | 4 -> Iq.Engine.M_remove_query (get_u32 s pos)
        | t -> raise (Malformed (Printf.sprintf "unknown mutation tag %d" t))
      in
      if !pos <> String.length s then Error "trailing bytes after payload"
      else Ok (generation, m)
    end
  with
  | Malformed msg -> Error msg
  | Invalid_argument msg -> Error msg
