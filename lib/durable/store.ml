(* The glue: a durable directory attached to a live engine. [attach]
   guarantees the directory always has a complete checkpoint (writing
   an initial one if needed), opens the log for appending, and installs
   the engine journal — from then on every acknowledged mutation is on
   disk before it is published, and checkpoints truncate the log. *)

type t = { dir : string; wal : Wal.t; engine : Iq.Engine.t }

let dir t = t.dir

let wal t = t.wal

let engine t = t.engine

let mkdir_p dir =
  let rec mk d =
    if not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir

let attach ?sync ?every ?fault ?(replayed_records = 0) ~dir engine =
  let sync = match sync with Some s -> s | None -> Wal.sync_of_config () in
  let every =
    match every with Some _ -> every | None -> Workload.Config.checkpoint_every ()
  in
  let resolve_fault () =
    match fault with
    | Some _ -> Ok fault
    | None -> (
        match Resilience.Fault.of_env () with
        | Ok f -> Ok f
        | Error msg ->
            Error
              (Iq.Engine.Error.Fault_spec
                 {
                   spec = Option.value ~default:"" (Workload.Config.fault ());
                   msg;
                 }))
  in
  match resolve_fault () with
  | Error e -> Error e
  | Ok fault -> (
      try
        mkdir_p dir;
        let cpath = Checkpoint.path_in dir in
        let ckpt_gen =
          if Sys.file_exists cpath then
            match Checkpoint.read cpath with
            | Ok c -> Checkpoint.generation c
            | Error msg -> failwith msg
          else begin
            (* a fresh directory gets a checkpoint immediately, so
               recovery never faces a log with no base image *)
            let c = Checkpoint.of_snapshot (Iq.Engine.snapshot engine) in
            let _bytes : int = Checkpoint.write ?fault cpath c in
            Checkpoint.generation c
          end
        in
        let wal = Wal.open_ ~sync ?fault (Wal.path_in dir) in
        let wal_bytes = Wal.size wal in
        let journal =
          {
            Iq.Engine.j_append =
              (fun ~generation m -> Wal.append wal ~generation m);
            j_checkpoint =
              (fun snap ->
                let c = Checkpoint.of_snapshot snap in
                let bytes = Checkpoint.write ?fault cpath c in
                (* checkpoint published; only now may the log shrink —
                   a crash in between leaves already-covered records
                   behind, which replay skips by generation *)
                Wal.reset wal;
                bytes);
            j_every = every;
          }
        in
        Iq.Engine.attach_journal ~replayed_records
          ~checkpoint_generation:ckpt_gen ~wal_bytes engine journal;
        Ok { dir; wal; engine }
      with
      | Resilience.Fault.Injected _ as e ->
          Error (Iq.Engine.Error.Internal (Printexc.to_string e))
      | Resilience.Fault.Torn_write _ as e ->
          Error (Iq.Engine.Error.Internal (Printexc.to_string e))
      | Failure msg | Invalid_argument msg ->
          Error (Iq.Engine.Error.Internal msg)
      | Unix.Unix_error (err, fn, arg) ->
          Error
            (Iq.Engine.Error.Internal
               (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))))

let checkpoint t = Iq.Engine.checkpoint t.engine

let detach t =
  Iq.Engine.detach_journal t.engine;
  Wal.close t.wal
