(* Rebuild an engine from a durable directory: checkpoint image + the
   intact prefix of the log, replayed through the very same validated
   maintenance entry points the original mutations took — recovery is
   re-execution, not state surgery, which is what makes the result
   byte-identical (same generation, same strategies, same hit counts)
   to a fresh engine fed the durable mutation prefix. *)

type report = {
  r_checkpoint_generation : int;
  r_replayed : int;
  r_skipped : int;
  r_torn_at : int option;
  r_corrupt : Iq.Engine.Error.t option;
  r_wal_bytes : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "checkpoint gen %d; replayed %d record%s (%d skipped); log %d bytes%s%s"
    r.r_checkpoint_generation r.r_replayed
    (if r.r_replayed = 1 then "" else "s")
    r.r_skipped r.r_wal_bytes
    (match r.r_torn_at with
    | None -> ""
    | Some off -> Printf.sprintf "; torn tail dropped at byte %d" off)
    (match r.r_corrupt with
    | None -> ""
    | Some e -> "; " ^ Iq.Engine.Error.to_string e)

let replay ?backend ?resilience ?prune ?pool dir =
  let ( let* ) = Result.bind in
  let* ckpt =
    match Checkpoint.read (Checkpoint.path_in dir) with
    | Ok c -> Ok c
    | Error msg -> Error (Iq.Engine.Error.Internal msg)
  in
  let wal_path = Wal.path_in dir in
  let scan = Wal.scan_file wal_path in
  (* Repair before anything can append again: a torn tail (and
     anything after a corrupt frame) must not linger under new
     records. *)
  Wal.truncate_file wal_path scan.Wal.intact_bytes;
  let inst = Checkpoint.instance ckpt in
  let ckpt_gen = Checkpoint.generation ckpt in
  let* engine =
    Iq.Engine.create ?backend ?resilience ?prune ~generation:ckpt_gen
      ~depth_slack:(Checkpoint.depth_slack ckpt inst)
      ?pool inst
  in
  let rec apply replayed skipped = function
    | [] -> Ok (replayed, skipped)
    | (generation, m) :: rest ->
        (* Records at or below the checkpoint generation are already in
           the image: a crash between checkpoint rename and log reset
           leaves them behind, and applying them twice would corrupt
           the rebuild. *)
        if generation <= ckpt_gen then apply replayed (skipped + 1) rest
        else
          let* () = Iq.Engine.apply_mutation engine m in
          apply (replayed + 1) skipped rest
  in
  let* replayed, skipped = apply 0 0 scan.Wal.entries in
  let corrupt =
    Option.map
      (fun offset -> Iq.Engine.Error.Wal_corrupt { path = wal_path; offset })
      scan.Wal.corrupt_at
  in
  Ok
    ( engine,
      {
        r_checkpoint_generation = ckpt_gen;
        r_replayed = replayed;
        r_skipped = skipped;
        r_torn_at = scan.Wal.torn_at;
        r_corrupt = corrupt;
        r_wal_bytes = scan.Wal.intact_bytes;
      } )
