(** Versioned binary codec for durable-log payloads.

    A payload is [u8 version | u32 generation | u8 tag | body], all
    little-endian, floats as raw IEEE-754 bits — decoding an encoded
    mutation is bit-exact, which is what makes recovery byte-identical
    to the original run. The generation stamp is the generation the
    mutation {e produced}; [Recovery] uses it to skip records already
    covered by a checkpoint. Framing (length prefix + checksum) lives
    in {!Wal}; corruption of a payload {e inside} an intact frame is
    impossible unless the checksum colludes, so {!decode} errors are
    treated as corruption by the scanner. *)

val version : int
(** Current payload format version (1). A decoded record with any
    other version byte is rejected, not guessed at. *)

val crc32 : string -> int
(** IEEE 802.3 CRC-32 (the zlib/PNG polynomial), as a non-negative
    int. Reference vector: [crc32 "123456789" = 0xCBF43926]. *)

val encode : generation:int -> Iq.Engine.mutation -> string
(** Serialize one mutation stamped with the generation it produces. *)

val decode : string -> (int * Iq.Engine.mutation, string) result
(** Inverse of {!encode}: [(generation, mutation)], or a message for
    payloads that are truncated, over-long, or of an unknown
    version/tag. Never raises. *)
