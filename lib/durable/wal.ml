(* The append-only mutation log. One frame per record:
   [u32 len | u32 crc32(payload) | payload]. The writer always runs
   under the engine's write lock (journal callbacks are invoked there),
   so the channel needs no locking of its own.

   Crash-simulation contract: every append flushes the channel, so
   "durable" for the in-process crash tests means "in the file after
   flush" — fsync only adds OS-level durability on top and never
   changes what a recovery test can observe. An exception escaping a
   fault point here is a simulated process death: the handle marks
   itself dead and refuses further work, because continuing to append
   after a torn write would bury garbage in the middle of the log. *)

type sync = Always | Batch of int | Off

let sync_of_config () =
  match Workload.Config.wal_sync () with
  | "always" -> Always
  | "off" -> Off
  | _ -> Batch 64

type t = {
  path : string;
  oc : out_channel;
  sync : sync;
  fault : Resilience.Fault.t option;
  mutable unsynced : int;
  mutable dead : bool;
  mutable closed : bool;
}

let path_in dir = Filename.concat dir "wal.log"

let open_ ?(sync = Batch 64) ?fault path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      path
  in
  { path; oc; sync; fault; unsynced = 0; dead = false; closed = false }

let path t = t.path

let fd t = Unix.descr_of_out_channel t.oc

let size t =
  flush t.oc;
  (Unix.fstat (fd t)).Unix.st_size

let check_live t op =
  if t.closed then failwith (Printf.sprintf "Durable.Wal.%s: closed log" op);
  if t.dead then
    failwith
      (Printf.sprintf
         "Durable.Wal.%s: %s died on an injected crash — recover from disk"
         op t.path)

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  let put_u32 v =
    for i = 0 to 3 do
      Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
    done
  in
  put_u32 (String.length payload);
  put_u32 (Codec.crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

let do_sync t =
  Unix.fsync (fd t);
  t.unsynced <- 0

let fsync t =
  check_live t "fsync";
  flush t.oc;
  match t.sync with Off -> () | Always | Batch _ -> do_sync t

let append t ~generation m =
  check_live t "append";
  let bytes = frame (Codec.encode ~generation m) in
  (* [wal.append] fires before any byte lands: a plain injection kills
     the process pre-write (record lost, mutation unacknowledged); a
     torn injection persists a prefix of the frame first — exactly the
     state a mid-write power cut leaves behind. *)
  (try Resilience.Fault.point t.fault ~site:"wal.append"
   with
  | Resilience.Fault.Torn_write { frac; _ } as e ->
      let n = int_of_float (frac *. float_of_int (String.length bytes)) in
      output_substring t.oc bytes 0 n;
      flush t.oc;
      t.dead <- true;
      raise e
  | e ->
      t.dead <- true;
      raise e);
  output_string t.oc bytes;
  flush t.oc;
  (* [wal.fsync] fires after the flush: the record is durable but the
     crash happens before the mutation is acknowledged — recovery may
     legitimately replay one more record than the client saw succeed. *)
  (try Resilience.Fault.point t.fault ~site:"wal.fsync"
   with e ->
     t.dead <- true;
     raise e);
  (match t.sync with
  | Always -> do_sync t
  | Batch n ->
      t.unsynced <- t.unsynced + 1;
      if t.unsynced >= n then do_sync t
  | Off -> ());
  String.length bytes

let reset t =
  check_live t "reset";
  flush t.oc;
  Unix.ftruncate (fd t) 0;
  (* the channel is O_APPEND so writes follow the (now zero) file end;
     re-seat the buffer position so [pos_out] stays meaningful *)
  seek_out t.oc 0;
  t.unsynced <- 0

let close t =
  if not t.closed then begin
    if not t.dead then begin
      (try flush t.oc with Sys_error _ -> ());
      match t.sync with
      | Off -> ()
      | Always | Batch _ -> (
          try do_sync t with Sys_error _ | Unix.Unix_error _ -> ())
    end;
    t.closed <- true;
    close_out_noerr t.oc
  end

(* --- recovery-side scanning ---------------------------------------- *)

type scan = {
  entries : (int * Iq.Engine.mutation) list;
  intact_bytes : int;
  torn_at : int option;
  corrupt_at : int option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let u32_at s off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

(* No single frame should come near this: the largest record is an
   object/query row, a few KiB. A bigger claimed length with the bytes
   actually present is corruption, not a huge record. *)
let max_frame = 1 lsl 26

let scan_file path =
  if not (Sys.file_exists path) then
    { entries = []; intact_bytes = 0; torn_at = None; corrupt_at = None }
  else begin
    let s = read_file path in
    let len = String.length s in
    let entries = ref [] in
    let off = ref 0 in
    let torn = ref None in
    let corrupt = ref None in
    let stop = ref false in
    while not !stop do
      if !off = len then stop := true
      else if len - !off < 8 then begin
        (* a frame header can't even fit: torn tail *)
        torn := Some !off;
        stop := true
      end
      else begin
        let plen = u32_at s !off in
        if plen > max_frame then begin
          corrupt := Some !off;
          stop := true
        end
        else if len - !off - 8 < plen then begin
          (* the frame claims more payload than the file holds: the
             final append was cut mid-record *)
          torn := Some !off;
          stop := true
        end
        else begin
          let crc = u32_at s (!off + 4) in
          let payload = String.sub s (!off + 8) plen in
          if Codec.crc32 payload <> crc then begin
            corrupt := Some !off;
            stop := true
          end
          else
            match Codec.decode payload with
            | Error _ ->
                (* intact frame, nonsense payload: the checksum matched
                   garbage, so treat it as corruption too *)
                corrupt := Some !off;
                stop := true
            | Ok entry ->
                entries := entry :: !entries;
                off := !off + 8 + plen
        end
      end
    done;
    {
      entries = List.rev !entries;
      intact_bytes = !off;
      torn_at = !torn;
      corrupt_at = !corrupt;
    }
  end

let truncate_file path bytes =
  if Sys.file_exists path then begin
    let st = Unix.stat path in
    if st.Unix.st_size > bytes then Unix.truncate path bytes
  end
