(** The append-only durable mutation log.

    One CRC-framed record per successful engine mutation:
    [u32 len | u32 crc32(payload) | payload] (little-endian), payload
    as in {!Codec}. The handle is written only from the engine's
    journal callbacks, which run under the engine's write lock — one
    writer by construction, no locking here.

    {b What "durable" means in-process.} Every append flushes the
    [out_channel], so the crash-fault tests — which simulate death by
    exception, not by killing the process — observe exactly the bytes
    a real crash would leave: the flushed prefix. The {!sync} policy
    ([IQ_WAL_SYNC]) controls [fsync], i.e. durability against {e OS}
    crashes; it never changes recovery-visible state in-process.

    {b Crash faults.} [append] consults two {!Resilience.Fault} sites:
    [wal.append] fires before any byte lands (a [torn] rule persists
    [floor (frac * frame)] bytes first — the mid-write power cut), and
    [wal.fsync] fires after the flush (record durable, crash before
    the client sees the ack). Any injected raise marks the handle
    {e dead}: further operations fail, as a dead process's would, and
    state must be rebuilt from disk via [Recovery]. *)

type sync =
  | Always  (** fsync every append *)
  | Batch of int  (** fsync every [n] appends, and on close/checkpoint *)
  | Off  (** never fsync; flush only *)

val sync_of_config : unit -> sync
(** The [IQ_WAL_SYNC] knob ({!Workload.Config.wal_sync}): ["always"],
    ["off"], or ["batch"] (the default, as [Batch 64]). *)

type t

val path_in : string -> string
(** The log's path inside a durable directory ([<dir>/wal.log]) —
    shared vocabulary for [Store], [Recovery] and the CLI. *)

val open_ : ?sync:sync -> ?fault:Resilience.Fault.t -> string -> t
(** Open (creating if missing) for appending. Pair with {!close} —
    the [handle-lifecycle] lint tracks this family. *)

val append : t -> generation:int -> Iq.Engine.mutation -> int
(** Frame and persist one record, stamped with the generation it
    produces; returns the bytes written (frame included). Raises on an
    injected crash (see above) — the engine aborts the mutation, so an
    acknowledged mutation always has a durable record. *)

val fsync : t -> unit
(** Force an fsync now (no-op under {!Off}). *)

val size : t -> int
(** Current log length in bytes (flushes first). *)

val reset : t -> unit
(** Truncate to empty — called by [Store] right after a checkpoint
    lands. A crash between checkpoint and reset is benign: replay
    skips records at or below the checkpoint's generation. *)

val path : t -> string

val close : t -> unit
(** Flush, fsync (per policy) and release the handle. Idempotent. *)

(** {2 Recovery-side scanning} *)

type scan = {
  entries : (int * Iq.Engine.mutation) list;
      (** intact records in log order, [(generation, mutation)] *)
  intact_bytes : int;
      (** byte offset one past the last intact record — the length the
          log should be repaired to *)
  torn_at : int option;
      (** offset of a partial final frame (mid-append crash); expected
          after a torn crash, silently dropped by repair *)
  corrupt_at : int option;
      (** offset of a complete frame failing its checksum (or carrying
          an undecodable payload) — reported as
          [Iq.Engine.Error.Wal_corrupt], everything before it is still
          recovered *)
}

val scan_file : string -> scan
(** Read a log file front to back, validating each frame. Stops at the
    first torn or corrupt frame; a missing file is an empty scan.
    Never raises on malformed content. *)

val truncate_file : string -> int -> unit
(** Repair: cut the file back to its intact prefix (no-op when already
    that short), so post-recovery appends extend a clean log. *)
