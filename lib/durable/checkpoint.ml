(* Atomic snapshot persistence: a plain-data image of the engine's
   current generation, written tmp+fsync+rename so a reader never
   observes a half-written checkpoint — after any crash the file is
   either the old complete checkpoint or the new complete one. *)

type t = {
  c_generation : int;
  c_desc : bool;
  c_raw : Geom.Vec.t array;
  c_queries : (float array * int * int) array;
  c_depth : int;
}

let magic = "iq-ckpt-v1"

let path_in dir = Filename.concat dir "checkpoint.iqc"

let linear_utility (u : Topk.Utility.t) =
  u.Topk.Utility.dim_in = u.Topk.Utility.dim_out
  && String.length u.Topk.Utility.name >= 6
  && String.sub u.Topk.Utility.name 0 6 = "linear"

let of_snapshot snap =
  let inst = Iq.Snapshot.instance snap in
  if not (linear_utility inst.Iq.Instance.utility) then
    invalid_arg
      "Durable.Checkpoint.of_snapshot: only linear-utility engines are \
       checkpointable (the feature-map closure cannot be serialised)";
  let order = inst.Iq.Instance.order in
  {
    c_generation = Iq.Snapshot.generation snap;
    c_desc = (order = Topk.Utility.Desc);
    c_raw = inst.Iq.Instance.raw;
    c_queries =
      (* the instance stores effective (minimizing) weights; applying
         the order map again de-negates Desc exactly (negation is an
         involution), so [instance] below round-trips bit-for-bit
         through [Instance.create ~order] *)
      Array.map
        (fun (q : Topk.Query.t) ->
          ( Topk.Utility.effective_weights order q.Topk.Query.weights,
            q.Topk.Query.k,
            q.Topk.Query.id ))
        inst.Iq.Instance.queries;
    c_depth = Iq.Query_index.depth (Iq.Snapshot.index snap);
  }

let generation c = c.c_generation

let instance c =
  let queries =
    Array.to_list c.c_queries
    |> List.map (fun (w, k, id) -> Topk.Query.make ~id ~k w)
  in
  let order = if c.c_desc then Topk.Utility.Desc else Topk.Utility.Asc in
  Iq.Instance.create ~order ~data:c.c_raw ~queries ()

let depth_slack c inst =
  Int.max 0 (c.c_depth - (Iq.Instance.max_k inst + 1))

let marshal c =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (Marshal.to_string c []);
  Buffer.contents b

let write ?fault path c =
  let bytes = marshal c in
  let tmp = path ^ ".tmp" in
  let spill n =
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_substring oc bytes 0 n;
        flush oc)
  in
  (* [checkpoint.write] fires before the tmp file exists; a torn rule
     leaves a partial [.tmp] behind — harmless, since only the rename
     publishes. *)
  (try Resilience.Fault.point fault ~site:"checkpoint.write"
   with
  | Resilience.Fault.Torn_write { frac; _ } as e ->
      spill (int_of_float (frac *. float_of_int (String.length bytes)));
      raise e
  | e -> raise e);
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc bytes;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  (* [checkpoint.rename] fires with the tmp complete but unpublished:
     the crash window where the old checkpoint must still win. *)
  Resilience.Fault.point fault ~site:"checkpoint.rename";
  Sys.rename tmp path;
  String.length bytes

let read path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no checkpoint at %s" path)
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let line = try input_line ic with End_of_file -> "" in
          if line <> magic then
            Error (Printf.sprintf "%s is not a checkpoint (bad magic)" path)
          else Ok (Marshal.from_channel ic : t))
    with e ->
      Error
        (Printf.sprintf "unreadable checkpoint %s: %s" path
           (Printexc.to_string e))
