(** Atomic engine-snapshot persistence.

    A checkpoint is a plain-data image of one generation — raw object
    rows, the workload queries in the user's (de-negated) weight
    convention, the order flag, the index depth, and the generation
    stamp — enough for [Recovery] to rebuild a byte-identical engine
    through [Instance.create] and the normal index build. No closures
    are stored, so only {e linear-utility} engines are checkpointable
    (the same restriction [Query_index.save] documents); feature-mapped
    engines get [Invalid_argument] from {!of_snapshot}.

    {b Atomicity.} {!write} goes tmp → flush → fsync → rename. A crash
    at any point (the [checkpoint.write] / [checkpoint.rename] fault
    sites) leaves the previous complete checkpoint in place; only the
    rename publishes. *)

type t

val path_in : string -> string
(** The checkpoint's path inside a durable directory
    ([<dir>/checkpoint.iqc]). *)

val of_snapshot : Iq.Snapshot.t -> t
(** Capture a published snapshot (called under the engine's write lock
    by the journal's checkpoint callback).
    @raise Invalid_argument on non-linear utilities. *)

val generation : t -> int
(** The generation the image was taken at — replay applies only log
    records {e above} it. *)

val instance : t -> Iq.Instance.t
(** Rebuild the problem instance. Weights round-trip exactly: saving
    de-negates [Desc] weights, [Instance.create ~order] re-negates
    them — float negation is lossless. *)

val depth_slack : t -> Iq.Instance.t -> int
(** The [depth_slack] to rebuild the index with so its prefix depth
    matches the checkpointed engine's. *)

val write : ?fault:Resilience.Fault.t -> string -> t -> int
(** Persist atomically to a path; returns bytes written. Consults
    [checkpoint.write] (before the tmp exists; torn rules spill a
    partial tmp) and [checkpoint.rename] (tmp complete, unpublished).
    Raises on injected crashes — the engine surfaces that as a typed
    error and the on-disk state stays recoverable either way. *)

val read : string -> (t, string) result
(** Load a checkpoint; [Error] on a missing file, bad magic or a
    truncated image. Never raises. *)
