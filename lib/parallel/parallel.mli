(** A hand-rolled fixed-size [Domain] work pool (OCaml 5 stdlib only —
    no domainslib).

    The pool owns [domains - 1] worker domains; the caller of
    {!parallel_for} / {!map_array} is the remaining participant, so a
    pool of size [n] computes with [n] domains total. Work is split
    into chunks claimed dynamically off a shared atomic cursor, which
    load-balances uneven per-item costs (candidate evaluations vary
    wildly in how much of the affected subspace they touch).

    {b Auto-tuned chunking.} A pool never materializes more than
    [Domain.recommended_domain_count () - 1] worker domains, and each
    job activates at most [Domain.recommended_domain_count ()]
    participants — a pool configured with more domains than the host
    has cores (e.g. [IQ_DOMAINS=2] in a single-core container) keeps
    all the work on the caller and spawns nothing, instead of paying
    stop-the-world minor-GC synchronization (which every live domain
    joins, parked or not) for no extra compute. Oversubscribed pools
    therefore run within noise of [~domains:1]. When several cores are genuinely
    available, the first nominal chunk runs inline as a timing probe
    and the rest of the range is re-chunked so that every chunk's work
    amortizes the pool's measured dispatch overhead (calibrated once
    per pool, median of three empty-job round-trips) at least 4x:
    cheap loops degrade to the sequential path automatically,
    expensive ones still over-decompose 4 chunks per active domain for
    cursor load-balancing. None of this changes results — only where
    and in how many pieces the same indices run.

    {b Sequential bypass.} A pool created with [~domains:1] spawns no
    domains at all: every operation degrades to a plain [for] loop on
    the calling domain, so results — including evaluation-order
    effects — are byte-identical to code that never heard of this
    module. The same bypass applies to nested calls: a task already
    running inside a pool operation executes nested pool operations
    sequentially (no re-entrant scheduling, no deadlock).

    {b Sharing discipline.} Tasks receive no isolation: they run
    against whatever state the closures capture. Callers must only
    share immutable data (or disjoint mutable slots, e.g. distinct
    indices of a result array) across tasks. The IQ hot paths satisfy
    this by construction: the TA/Eval scorers and the ESE slab search
    read immutable [Instance] arrays and a frozen index. *)

type pool

val default_domains : unit -> int
(** Pool size knob: the [IQ_DOMAINS] environment variable when set to
    a positive integer, otherwise
    [max 1 (Domain.recommended_domain_count () - 1)] (leaving one core
    for the OS / the main program on big machines, and degrading to
    the sequential bypass on single-core containers). *)

val create : ?domains:int -> unit -> pool
(** [create ()] builds a pool of [default_domains ()] total domains —
    at most [domains - 1] spawned workers, further capped at the
    host's spare cores (see the auto-tuning note above). [~domains:1]
    spawns nothing and makes every operation a sequential loop.
    @raise Invalid_argument when [domains < 1]. *)

val default : unit -> pool
(** The shared process-wide pool, created lazily from
    {!default_domains} on first use and shut down at exit. Library
    entry points that take [?pool] use [None] = "stay sequential";
    pass [Parallel.default ()] to opt into the shared pool. *)

val domains : pool -> int
(** The configured pool size, [>= 1] — what the caller asked for, not
    the (possibly core-capped) number of spawned workers. *)

val live : unit -> int
(** Number of pools created and not yet shut down, process-wide. A
    well-behaved server routes everything through one shared pool —
    [bin/iq_tool] asserts [live () = 1] after engine construction. *)

val parallel_for :
  ?stop:(unit -> bool) ->
  ?on_chunk:(unit -> unit) ->
  pool ->
  lo:int ->
  hi:int ->
  (int -> unit) ->
  unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for every [lo <= i < hi]
    across the pool (caller included). Iteration order is unspecified
    across domains; any exception raised by some [f i] is re-raised in
    the caller after all in-flight chunks drain (first one wins,
    remaining chunks are abandoned).

    [stop] is the cooperative-cancellation hook: each participant
    consults it before claiming work on a chunk and skips the body
    once it returns [true]. Skipped chunks still count as completed,
    so the job drains cleanly — the caller returns (without raising)
    and no worker stays busy on abandoned work. The serving layer
    passes a budget check here; which indices ran is then undefined,
    so callers must treat the results as discardable.

    [on_chunk] runs at the start of every chunk a participant
    actually executes (fault-injection sites hook in here). Exceptions
    from [stop]/[on_chunk] propagate exactly like body exceptions.

    The [domains = 1] bypass with neither hook supplied remains the
    plain sequential loop; with hooks it checks [stop] before every
    index (cancellation can only land sooner than the chunked
    path). *)

val map_array :
  ?stop:(unit -> bool) ->
  ?on_chunk:(unit -> unit) ->
  pool ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** Chunked, order-preserving parallel map: [map_array pool f arr]
    returns an array [r] with [r.(i) = f arr.(i)] — same length, same
    positions, regardless of which domain computed which element.
    Exceptions propagate as in {!parallel_for}; [stop]/[on_chunk]
    behave as there ([f arr.(0)] seeds the result array on the caller
    before chunking, so it runs even when [stop] is already true, and
    slots of skipped chunks are left holding that seed value —
    discard the array when a stop was requested). *)

val shutdown : pool -> unit
(** Join the worker domains. Idempotent. Using the pool afterwards
    falls back to sequential execution. *)
