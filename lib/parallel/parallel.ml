type task = unit -> unit

type pool = {
  n_domains : int; (* total participants, caller included *)
  mutex : Mutex.t;
  wake : Condition.t;
  tasks : task Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

(* True while the current domain is executing inside a pool operation
   (as a worker, or as a caller draining its own chunks). Nested
   operations then run sequentially instead of re-entering the
   scheduler, which is both deadlock-free and deterministic. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

let default_domains () =
  let fallback = Int.max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "IQ_DOMAINS" with
  | None -> fallback
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> fallback)

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.tasks && not pool.stopped do
    Condition.wait pool.wake pool.mutex
  done;
  if Queue.is_empty pool.tasks then Mutex.unlock pool.mutex (* stopped *)
  else begin
    let task = Queue.pop pool.tasks in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

(* Pools created and not yet shut down — the serving layer asserts
   exactly one per process (see bin/iq_tool.ml). *)
let live_pools = Atomic.make 0

let live () = Atomic.get live_pools

let create ?domains () =
  let n = match domains with Some n -> n | None -> default_domains () in
  if n < 1 then invalid_arg "Parallel.create: domains < 1";
  Atomic.incr live_pools;
  let pool =
    {
      n_domains = n;
      mutex = Mutex.create ();
      wake = Condition.create ();
      tasks = Queue.create ();
      stopped = false;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init (n - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set inside_pool true;
            worker_loop pool));
  pool

let domains pool = pool.n_domains

let shutdown pool =
  Mutex.lock pool.mutex;
  let first = not pool.stopped in
  pool.stopped <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  if first then Atomic.decr live_pools;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let shared = ref None

let default () =
  match !shared with
  | Some pool -> pool
  | None ->
      let pool = create () in
      shared := Some pool;
      at_exit (fun () -> shutdown pool);
      pool

(* A fork-join job: chunks are claimed off [cursor]; [completed]
   counts chunks fully processed by whoever ran them. The caller
   participates, then blocks on [done_cond] until the last in-flight
   chunk lands. The first exception is kept and the cursor exhausted
   so remaining chunks are abandoned fast. *)
type job = {
  lo : int;
  chunk : int;
  n_chunks : int;
  body : int -> unit;
  stop_req : unit -> bool;
  on_chunk : unit -> unit;
  cursor : int Atomic.t;
  completed : int Atomic.t;
  failure : exn option Atomic.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
}

let run_chunks job hi =
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add job.cursor 1 in
    if c >= job.n_chunks then continue := false
    else begin
      let start = job.lo + (c * job.chunk) in
      let stop = Int.min hi (start + job.chunk) in
      (* After a failure — or once [stop_req] asks for cancellation —
         the remaining chunks are still claimed (so the completion
         count converges and the caller's wait can never wedge) but
         their bodies are skipped: a tripped budget drains the job
         without leaving a worker live on abandoned work. [stop_req]
         and [on_chunk] are caller code, so their exceptions are
         captured exactly like body ones. *)
      begin
        try
          if Atomic.get job.failure = None && not (job.stop_req ()) then begin
            job.on_chunk ();
            for i = start to stop - 1 do
              job.body i
            done
          end
        with e -> ignore (Atomic.compare_and_set job.failure None (Some e))
      end;
      let finished = 1 + Atomic.fetch_and_add job.completed 1 in
      if finished = job.n_chunks then begin
        Mutex.lock job.done_mutex;
        Condition.broadcast job.done_cond;
        Mutex.unlock job.done_mutex
      end
    end
  done

(* The sequential bypass mirrors the chunked semantics: with neither
   hook supplied it is the plain loop (byte-identical to pre-pool
   code); with hooks it checks [stop] before every index — finer
   grained than the parallel path's chunk boundaries, which only
   means cancellation lands sooner. *)
let sequential_for ~stop ~on_chunk ~lo ~hi f =
  match (stop, on_chunk) with
  | None, None ->
      for i = lo to hi - 1 do
        f i
      done
  | _ ->
      let stop = match stop with Some s -> s | None -> fun () -> false in
      (match on_chunk with Some h -> h () | None -> ());
      let i = ref lo in
      while !i < hi && not (stop ()) do
        f !i;
        incr i
      done

let parallel_for ?stop ?on_chunk pool ~lo ~hi f =
  let len = hi - lo in
  if len <= 0 then ()
  else if
    pool.n_domains = 1 || pool.stopped || len = 1
    || Domain.DLS.get inside_pool
  then sequential_for ~stop ~on_chunk ~lo ~hi f
  else begin
    (* Over-decompose (4 chunks per domain) so the atomic cursor
       load-balances uneven per-index costs. *)
    let n_chunks = Int.min len (pool.n_domains * 4) in
    let chunk = (len + n_chunks - 1) / n_chunks in
    let job =
      {
        lo;
        chunk;
        n_chunks;
        body = f;
        stop_req = (match stop with Some s -> s | None -> fun () -> false);
        on_chunk = (match on_chunk with Some h -> h | None -> fun () -> ());
        cursor = Atomic.make 0;
        completed = Atomic.make 0;
        failure = Atomic.make None;
        done_mutex = Mutex.create ();
        done_cond = Condition.create ();
      }
    in
    let helpers = Int.min (Array.length pool.workers) (n_chunks - 1) in
    Mutex.lock pool.mutex;
    for _ = 1 to helpers do
      Queue.add (fun () -> run_chunks job hi) pool.tasks
    done;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    Domain.DLS.set inside_pool true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set inside_pool false)
      (fun () -> run_chunks job hi);
    Mutex.lock job.done_mutex;
    while Atomic.get job.completed < job.n_chunks do
      Condition.wait job.done_cond job.done_mutex
    done;
    Mutex.unlock job.done_mutex;
    match Atomic.get job.failure with None -> () | Some e -> raise e
  end

let map_array ?stop ?on_chunk pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    parallel_for ?stop ?on_chunk pool ~lo:1 ~hi:n (fun i ->
        (* Each iteration writes a distinct cell, so no two domains
           touch the same slot. iqlint: allow domain-unsafe-capture *)
        out.(i) <- f arr.(i));
    out
  end
