type task = unit -> unit

type pool = {
  n_domains : int; (* total participants, caller included *)
  mutex : Mutex.t;
  wake : Condition.t;
  tasks : task Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
  mutable overhead : float;
      (* measured per-job dispatch overhead in seconds; negative until
         the first calibration (lazy, once per pool) *)
}

(* Hardware parallelism available to this process. A pool may be
   configured with more domains than cores (IQ_DOMAINS=8 on a laptop in
   a container); activating them all just multiplies stop-the-world
   minor-GC synchronization without adding compute, so jobs cap their
   active participants here. *)
let cores = Domain.recommended_domain_count ()

(* True while the current domain is executing inside a pool operation
   (as a worker, or as a caller draining its own chunks). Nested
   operations then run sequentially instead of re-entering the
   scheduler, which is both deadlock-free and deterministic. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

let default_domains () =
  let fallback = Int.max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "IQ_DOMAINS" with
  | None -> fallback
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> fallback)

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.tasks && not pool.stopped do
    Condition.wait pool.wake pool.mutex
  done;
  if Queue.is_empty pool.tasks then Mutex.unlock pool.mutex (* stopped *)
  else begin
    let task = Queue.pop pool.tasks in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

(* Pools created and not yet shut down — the serving layer asserts
   exactly one per process (see bin/iq_tool.ml). *)
let live_pools = Atomic.make 0

let live () = Atomic.get live_pools

let create ?domains () =
  let n = match domains with Some n -> n | None -> default_domains () in
  if n < 1 then invalid_arg "Parallel.create: domains < 1";
  Atomic.incr live_pools;
  let pool =
    {
      n_domains = n;
      mutex = Mutex.create ();
      wake = Condition.create ();
      tasks = Queue.create ();
      stopped = false;
      workers = [||];
      overhead = -1.;
    }
  in
  (* Never spawn more workers than spare cores: an idle domain is not
     free — every minor collection is a stop-the-world handshake across
     all live domains, so a parked worker on a 1-CPU host roughly
     doubles GC pauses. Oversubscribed pools (IQ_DOMAINS=8 on a small
     container) keep their configured size for reporting but only
     materialize the domains the host can actually run. *)
  pool.workers <-
    Array.init
      (Int.min (n - 1) (Int.max 0 (cores - 1)))
      (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set inside_pool true;
            worker_loop pool));
  pool

let domains pool = pool.n_domains

let shutdown pool =
  Mutex.lock pool.mutex;
  let first = not pool.stopped in
  pool.stopped <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  if first then Atomic.decr live_pools;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let shared = ref None

let default () =
  match !shared with
  | Some pool -> pool
  | None ->
      let pool = create () in
      shared := Some pool;
      at_exit (fun () -> shutdown pool);
      pool

(* A fork-join job: chunks are claimed off [cursor]; [completed]
   counts chunks fully processed by whoever ran them. The caller
   participates, then blocks on [done_cond] until the last in-flight
   chunk lands. The first exception is kept and the cursor exhausted
   so remaining chunks are abandoned fast. *)
type job = {
  lo : int;
  chunk : int;
  n_chunks : int;
  body : int -> unit;
  stop_req : unit -> bool;
  on_chunk : unit -> unit;
  cursor : int Atomic.t;
  completed : int Atomic.t;
  failure : exn option Atomic.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
}

let run_chunks job hi =
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add job.cursor 1 in
    if c >= job.n_chunks then continue := false
    else begin
      let start = job.lo + (c * job.chunk) in
      let stop = Int.min hi (start + job.chunk) in
      (* After a failure — or once [stop_req] asks for cancellation —
         the remaining chunks are still claimed (so the completion
         count converges and the caller's wait can never wedge) but
         their bodies are skipped: a tripped budget drains the job
         without leaving a worker live on abandoned work. [stop_req]
         and [on_chunk] are caller code, so their exceptions are
         captured exactly like body ones. *)
      begin
        try
          if Atomic.get job.failure = None && not (job.stop_req ()) then begin
            job.on_chunk ();
            for i = start to stop - 1 do
              job.body i
            done
          end
        with e -> ignore (Atomic.compare_and_set job.failure None (Some e))
      end;
      let finished = 1 + Atomic.fetch_and_add job.completed 1 in
      if finished = job.n_chunks then begin
        Mutex.lock job.done_mutex;
        Condition.broadcast job.done_cond;
        Mutex.unlock job.done_mutex
      end
    end
  done

(* The sequential bypass mirrors the chunked semantics: with neither
   hook supplied it is the plain loop (byte-identical to pre-pool
   code); with hooks it checks [stop] before every index — finer
   grained than the parallel path's chunk boundaries, which only
   means cancellation lands sooner. *)
let sequential_for ~stop ~on_chunk ~lo ~hi f =
  match (stop, on_chunk) with
  | None, None ->
      for i = lo to hi - 1 do
        f i
      done
  | _ ->
      let stop = match stop with Some s -> s | None -> fun () -> false in
      (match on_chunk with Some h -> h () | None -> ());
      let i = ref lo in
      while !i < hi && not (stop ()) do
        f !i;
        incr i
      done

let make_job ~lo ~chunk ~n_chunks ~body ~stop_req ~on_chunk =
  {
    lo;
    chunk;
    n_chunks;
    body;
    stop_req;
    on_chunk;
    cursor = Atomic.make 0;
    completed = Atomic.make 0;
    failure = Atomic.make None;
    done_mutex = Mutex.create ();
    done_cond = Condition.create ();
  }

(* Enqueue [helpers] worker tasks, participate on the caller, wait for
   the last in-flight chunk, re-raise the first captured failure. With
   [helpers = 0] this is still the full job machinery — same chunk
   boundaries for [stop], same failure drain — just all on the
   caller. *)
let run_job pool job hi ~helpers =
  if helpers > 0 then begin
    Mutex.lock pool.mutex;
    for _ = 1 to helpers do
      Queue.add (fun () -> run_chunks job hi) pool.tasks
    done;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex
  end;
  Domain.DLS.set inside_pool true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set inside_pool false)
    (fun () -> run_chunks job hi);
  Mutex.lock job.done_mutex;
  while Atomic.get job.completed < job.n_chunks do
    Condition.wait job.done_cond job.done_mutex
  done;
  Mutex.unlock job.done_mutex;
  match Atomic.get job.failure with None -> () | Some e -> raise e

(* How long it takes to dispatch a job at all: set-up, queueing, worker
   wake-up and the completion handshake, measured with empty bodies
   (median of three to shrug off a scheduler blip). The caller
   participates in its own probe jobs, so calibration cannot wedge
   even if every worker is busy elsewhere. Chunks whose work does not
   amortize this are not worth shipping to another domain. *)
let dispatch_overhead pool =
  if pool.overhead >= 0. then pool.overhead
  else begin
    let sample () =
      let job =
        make_job ~lo:0 ~chunk:1 ~n_chunks:2 ~body:ignore
          ~stop_req:(fun () -> false)
          ~on_chunk:(fun () -> ())
      in
      let t0 = Unix.gettimeofday () in
      run_job pool job 2 ~helpers:(Int.min 1 (Array.length pool.workers));
      Unix.gettimeofday () -. t0
    in
    let s = Array.init 3 (fun _ -> sample ()) in
    Array.sort compare s;
    pool.overhead <- Float.max 0. s.(1);
    pool.overhead
  end

let parallel_for ?stop ?on_chunk pool ~lo ~hi f =
  let len = hi - lo in
  if len <= 0 then ()
  else if
    pool.n_domains = 1 || pool.stopped || len = 1
    || Domain.DLS.get inside_pool
  then sequential_for ~stop ~on_chunk ~lo ~hi f
  else begin
    let stop_req = match stop with Some s -> s | None -> fun () -> false in
    let hook = match on_chunk with Some h -> h | None -> fun () -> () in
    let active = Int.min pool.n_domains cores in
    if active <= 1 || Array.length pool.workers = 0 then begin
      (* More domains than cores collapses to one active participant:
         on a single-core host a second mutator only adds GC
         synchronization stalls, so the caller keeps all the work —
         still chunked through the job machinery so cancellation and
         failure-drain behave exactly like the parallel path. *)
      let n_chunks = Int.min len 4 in
      let chunk = (len + n_chunks - 1) / n_chunks in
      run_job pool
        (make_job ~lo ~chunk ~n_chunks ~body:f ~stop_req ~on_chunk:hook)
        hi ~helpers:0
    end
    else begin
      (* Run the first nominal chunk inline as a timing probe, then
         size the remaining chunks so each amortizes the measured
         dispatch overhead at least 4x. Cheap loops thus stay
         sequential automatically; expensive ones still over-decompose
         (4 chunks per active domain) for cursor load-balancing. *)
      let nominal = Int.min len (active * 4) in
      let probe_len = (len + nominal - 1) / nominal in
      let probe_hi = Int.min hi (lo + probe_len) in
      let t0 = Unix.gettimeofday () in
      if not (stop_req ()) then begin
        (* Probe items run under the same nested-sequential rule as
           chunked ones; a probe exception propagates directly (nothing
           has been dispatched yet — still exactly once). *)
        Domain.DLS.set inside_pool true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set inside_pool false)
          (fun () ->
            hook ();
            for i = lo to probe_hi - 1 do
              f i
            done)
      end;
      let t_probe = Unix.gettimeofday () -. t0 in
      let remaining = hi - probe_hi in
      if remaining > 0 then begin
        let oh = dispatch_overhead pool in
        let t_item =
          Float.max t_probe 1e-6 /. float_of_int (probe_hi - lo)
        in
        let min_chunk =
          Int.max 1 (int_of_float (Float.ceil (4. *. oh /. t_item)))
        in
        let n_chunks = Int.max 1 (Int.min (active * 4) (remaining / min_chunk)) in
        if n_chunks = 1 then sequential_for ~stop ~on_chunk ~lo:probe_hi ~hi f
        else begin
          let chunk = (remaining + n_chunks - 1) / n_chunks in
          let job =
            make_job ~lo:probe_hi ~chunk ~n_chunks ~body:f ~stop_req
              ~on_chunk:hook
          in
          let helpers =
            Int.min (Array.length pool.workers)
              (Int.min (n_chunks - 1) (active - 1))
          in
          run_job pool job hi ~helpers
        end
      end
    end
  end

let map_array ?stop ?on_chunk pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    parallel_for ?stop ?on_chunk pool ~lo:1 ~hi:n (fun i ->
        (* Each iteration writes a distinct cell, so no two domains
           touch the same slot. *)
        out.(i) <- f arr.(i));
    out
  end
