(** Min-Cost Improvement Query — Algorithm 3.

    Greedy ratio search: each iteration computes, for every query the
    target does not yet hit, the cheapest single step that would hit it
    (Equations 13–14 via the cost's min-step oracle), evaluates each
    candidate's total hit count with the plugged evaluator, applies the
    candidate with the best cost-per-hit ratio, and stops once at least
    [tau] queries are hit — switching to the cheapest
    [tau]-reaching candidate when the ratio choice would overshoot. *)

type status = [ `Complete | `Degraded of Resilience.Budget.trip ]
(** [`Degraded trip]: the budget tripped mid-search and the outcome is
    the anytime answer — the best strategy accumulated from fully
    evaluated iterations, with exact (never over-reported) hit counts;
    it just may not reach the goal. *)

type outcome = {
  strategy : Strategy.t;  (** the accumulated strategy [s], feature space *)
  total_cost : float;  (** [Cost(s)] of the accumulated strategy *)
  incremental_cost : float;  (** sum of per-iteration step costs *)
  hits_before : int;
  hits_after : int;
  iterations : int;
  evaluations : int;  (** candidate evaluations performed *)
  status : status;
}

val search :
  ?limits:Strategy.limits ->
  ?max_iterations:int ->
  ?candidate_cap:int ->
  ?pool:Parallel.pool ->
  ?budget:Resilience.Budget.t ->
  ?fault:Resilience.Fault.t ->
  evaluator:Evaluator.t ->
  cost:Cost.t ->
  target:int ->
  tau:int ->
  unit ->
  outcome option
(** [None] when [tau] hits are unreachable (no feasible candidate
    remains or the iteration cap — default [4*tau + 16] — is hit).
    A [tau] the target already meets — including [tau <= 0] — is
    trivially satisfied: the zero strategy comes back after zero
    iterations. Goal validation lives in {!Engine}, which reports
    typed errors instead of raising.
    [candidate_cap], when given, fully evaluates only that many
    cheapest candidate steps per iteration (a benchmark-scale knob; the
    default evaluates all, as the paper does).
    [pool] parallelizes each iteration's candidate evaluations across
    a {!Parallel} Domain pool. Candidate order is preserved and ties
    break on the lowest candidate index, so the search returns the
    {e same} strategy for any pool size (see [test/test_parallel.ml]).
    [budget] (default {!Resilience.Budget.unlimited}) is checked at
    iteration boundaries and inside candidate evaluation; a trip ends
    the search with [status = `Degraded _] — the iteration in flight
    is discarded whole, so the partial strategy's hit count is exact.
    [fault] consults the [search.iteration] site each iteration and
    threads into {!Candidates.collect}; injected exceptions escape to
    the caller ({!Engine} converts them to retries/fallbacks).
    @raise Invalid_argument when the cost arity differs from the
    instance's feature dimension (a wiring bug, not an input error). *)

val per_hit_cost : outcome -> float
(** The experiments' quality metric: total cost / hits achieved. *)
