(** Strategy evaluators — the pluggable "compute H(p_i + s)" oracle.

    The strategy-search loop (Algorithms 3 and 4) is evaluator-agnostic:
    Efficient-IQ plugs in {!ese}, the RTA-IQ baseline plugs in {!rta}
    (reverse top-k recomputed per candidate, linear utilities only), and
    tests use {!naive} as ground truth. All three agree on results;
    they differ in cost, which is exactly what Figures 7–12 measure. *)

open Geom

type t = {
  name : string;
  instance : Instance.t;
  base_hits : int;  (** [H(p_target)] with no strategy applied *)
  hit_count : Strategy.t -> int;
      (** [H(p_target + s)], feature space. Safe to call concurrently
          from several domains (the parallel candidate fan-out relies
          on this): all built-in evaluators read frozen state and keep
          their instrumentation in atomics. *)
  member : q:int -> Strategy.t -> bool;
      (** does the improved target hit query [q]? *)
  hit_constraint : q:int -> current:Vec.t -> (Vec.t * float) option;
      (** Equation 14's linear constraint; [None] = unconditional hit *)
  evaluations : unit -> int;  (** instrumentation *)
}

val ese : Query_index.t -> target:int -> t
(** Efficient-IQ's evaluator: Algorithm 2 over the subdomain index.
    Equivalent to [of_state index (Ese.prepare index ~target)]. *)

val of_state : Query_index.t -> Ese.state -> t
(** Wrap an already-prepared {!Ese} state. Lets a caller that needs
    the state itself (e.g. {!Engine}'s cache feeding
    {!Combinatorial}'s [?states]) prepare it exactly once. *)

val naive : ?pool:Parallel.pool -> Instance.t -> target:int -> t
(** Ground truth: rescan the full dataset per query (O(n·m·d) per
    evaluation). [pool] shards the per-query scan of each [hit_count]
    call across domains (an exact integer sum, so counts are identical
    to the sequential path). *)

val rta : ?pool:Parallel.pool -> Instance.t -> target:int -> t
(** Reverse-top-k (RTA) evaluation: every [hit_count] call runs RTA
    over the query set against the dataset with the target moved.
    [pool] runs RTA over disjoint query shards and sums the counts —
    the result is exact either way (pruning only skips known misses);
    sharding merely trades some shared-buffer pruning for
    parallelism, keeping baseline-vs-Efficient-IQ comparisons at equal
    domain counts apples-to-apples. *)
