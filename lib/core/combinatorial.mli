(** Combinatorial object improvement — Section 5.1.

    Improve a set of target objects together: Min-Cost wants the union
    of queries hit by the improved targets to reach [tau] at minimal
    total cost; Max-Hit maximizes that union within a shared budget.
    A query hit by several targets counts once. Each target may carry
    its own cost function. The search is the multi-target variant of
    the greedy ratio loop (steps 1–3 in Section 5.1). *)

type status = [ `Complete | `Degraded of Resilience.Budget.trip ]
(** As in {!Min_cost.status}: degraded outcomes carry the exact union
    count of the strategies actually applied. *)

type outcome = {
  strategies : (int * Strategy.t) list;
      (** one accumulated strategy per target id *)
  total_cost : float;  (** sum of per-target strategy costs *)
  union_hits_before : int;
  union_hits_after : int;
  iterations : int;
  status : status;
}

val min_cost :
  ?limits:(int * Strategy.limits) list ->
  ?max_iterations:int ->
  ?candidate_cap:int ->
  ?states:(int * Ese.state) list ->
  ?budget:Resilience.Budget.t ->
  ?fault:Resilience.Fault.t ->
  index:Query_index.t ->
  costs:(int * Cost.t) list ->
  tau:int ->
  unit ->
  outcome option
(** [costs] maps each target id to its cost function (the target set is
    its domain). [states] supplies pre-built {!Ese} states per target
    (e.g. from {!Engine}'s cache); targets without one prepare their
    own. [None] when [tau] union hits are unreachable; a [tau] the
    union already meets — including [tau <= 0] — is trivially
    satisfied with zero strategies.
    [budget]/[fault] behave as in {!Min_cost.search}: a trip ends the
    search with [status = `Degraded _] and the strategies applied so
    far (the fault sites here are [search.iteration] and the
    per-candidate step accounting — the multi-target candidate scan is
    sequential, so there is no [pool.task] site).
    @raise Invalid_argument when [costs] is empty. *)

val max_hit :
  ?limits:(int * Strategy.limits) list ->
  ?max_iterations:int ->
  ?candidate_cap:int ->
  ?states:(int * Ese.state) list ->
  ?budget:Resilience.Budget.t ->
  ?fault:Resilience.Fault.t ->
  index:Query_index.t ->
  costs:(int * Cost.t) list ->
  beta:float ->
  unit ->
  outcome
(** Shared budget [beta] across all targets; [states] as in
    {!min_cost}. *)
