open Geom

type status = [ `Complete | `Degraded of Resilience.Budget.trip ]

type outcome = {
  strategy : Strategy.t;
  total_cost : float;
  incremental_cost : float;
  hits_before : int;
  hits_after : int;
  iterations : int;
  evaluations : int;
  status : status;
}

let ratio (c : Candidates.t) =
  if c.Candidates.hits <= 0 then infinity
  else c.Candidates.step_cost /. float_of_int c.Candidates.hits

(* Deterministic argmin: strict improvement only, so ties keep the
   lowest candidate index. Candidates.collect preserves candidate
   order under a Parallel pool, hence parallel and sequential searches
   apply the *same* step each iteration — not just an equal-score
   one — and return identical strategies. *)
let best_by score = function
  | [] -> invalid_arg "Min_cost.best_by: no candidates"
  | c :: cs ->
      List.fold_left (fun acc c -> if score c < score acc then c else acc) c cs

let search ?limits ?max_iterations ?candidate_cap ?pool ?budget ?fault
    ~(evaluator : Evaluator.t) ~(cost : Cost.t) ~target ~tau () =
  let inst = evaluator.Evaluator.instance in
  let d = Instance.dim inst in
  if cost.Cost.dim <> d then invalid_arg "Min_cost.search: cost arity";
  let budget =
    match budget with Some b -> b | None -> Resilience.Budget.unlimited
  in
  let limits =
    match limits with Some l -> l | None -> Strategy.unrestricted d
  in
  let max_iterations =
    match max_iterations with Some n -> n | None -> (4 * tau) + 16
  in
  let p0 = inst.Instance.features.(target) in
  let total_bounds = Strategy.bounds_for limits ~p:p0 in
  let s_star = ref (Strategy.zero d) in
  let spent = ref 0. in
  let hits = ref evaluator.Evaluator.base_hits in
  let iterations = ref 0 in
  let finished = ref (!hits >= tau) in
  let failed = ref false in
  let degraded = ref None in
  while
    Option.is_none !degraded
    && (not !finished)
    && (not !failed)
    && !iterations < max_iterations
  do
    (* Anytime discipline: the budget is checked before starting an
       iteration and again right after the candidate batch comes back.
       An iteration interrupted mid-batch is discarded whole — the
       strategy only ever reflects fully evaluated, fully applied
       steps, so a degraded answer is under-achieved, never wrong. *)
    match Resilience.Budget.check budget with
    | Some trip -> degraded := Some trip
    | None -> (
        Resilience.Fault.point fault ~site:"search.iteration";
        incr iterations;
        let current = Vec.add p0 !s_star in
        let bounds = Candidates.remaining_bounds total_bounds !s_star in
        let candidates =
          Candidates.collect ?pool ~budget ?fault ~evaluator ~cost ~bounds
            ~current ~s_star:!s_star ~cap:candidate_cap ()
        in
        Log.debug (fun m ->
            m "min-cost iteration %d: %d candidates, H=%d/%d" !iterations
              (List.length candidates) !hits tau);
        match Resilience.Budget.check budget with
        | Some trip -> degraded := Some trip
        | None -> (
            match candidates with
            | [] -> failed := true
            | cs -> (
                let best = best_by ratio cs in
                if best.Candidates.hits <= tau then begin
                  s_star := Vec.add !s_star best.Candidates.step;
                  spent := !spent +. best.Candidates.step_cost;
                  hits := best.Candidates.hits;
                  if !hits >= tau then finished := true
                end
                else begin
                  (* Overshoot: apply the cheapest candidate reaching
                     tau. *)
                  let reaching =
                    List.filter (fun c -> c.Candidates.hits >= tau) cs
                  in
                  match reaching with
                  | [] -> failed := true
                  | _ :: _ ->
                      let cheapest =
                        best_by (fun c -> c.Candidates.step_cost) reaching
                      in
                      s_star := Vec.add !s_star cheapest.Candidates.step;
                      spent := !spent +. cheapest.Candidates.step_cost;
                      hits := cheapest.Candidates.hits;
                      finished := true
                end)))
  done;
  let outcome status =
    Some
      {
        strategy = !s_star;
        total_cost = cost.Cost.eval !s_star;
        incremental_cost = !spent;
        hits_before = evaluator.Evaluator.base_hits;
        hits_after = !hits;
        iterations = !iterations;
        evaluations = evaluator.Evaluator.evaluations ();
        status;
      }
  in
  match !degraded with
  | Some trip -> outcome (`Degraded trip)
  | None -> if not !finished then None else outcome `Complete

let per_hit_cost o =
  if o.hits_after <= 0 then infinity
  else o.total_cost /. float_of_int o.hits_after
