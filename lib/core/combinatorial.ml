open Geom

type status = [ `Complete | `Degraded of Resilience.Budget.trip ]

type outcome = {
  strategies : (int * Strategy.t) list;
  total_cost : float;
  union_hits_before : int;
  union_hits_after : int;
  iterations : int;
  status : status;
}

type target_ctx = {
  target : int;
  cost : Cost.t;
  state : Ese.state;
  total_bounds : Lp.Projection.bounds;
  mutable s_star : Vec.t;
  mutable members : bool array; (* membership under current s_star *)
  mutable spent : float;
}

type candidate = {
  ctx : target_ctx;
  step : Vec.t;
  step_cost : float;
  union_gain : int; (* change in union hit count if applied *)
}

let make_ctx index limits states (target, cost) =
  let inst = Query_index.instance index in
  let d = Instance.dim inst in
  let state =
    match List.assoc_opt target states with
    | Some s -> s
    | None -> Ese.prepare index ~target
  in
  let lims =
    match List.assoc_opt target limits with
    | Some l -> l
    | None -> Strategy.unrestricted d
  in
  let m = Instance.n_queries inst in
  {
    target;
    cost;
    state;
    total_bounds =
      Strategy.bounds_for lims ~p:inst.Instance.features.(target);
    s_star = Strategy.zero d;
    members = Array.init m (fun q -> Ese.member state ~q);
    spent = 0.;
  }

(* cover.(q) = number of targets currently hitting q. *)
let build_cover ctxs m =
  let cover = Array.make m 0 in
  List.iter
    (fun ctx ->
      Array.iteri (fun q b -> if b then cover.(q) <- cover.(q) + 1) ctx.members)
    ctxs;
  cover

let union_count cover =
  Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 cover

(* Union-hit change if [ctx] moves from [s_star] to [s_star + step]:
   only queries in the slab between the two positions can flip this
   target's membership. *)
let union_gain ~cover ctx step =
  let s_total = Vec.add ctx.s_star step in
  let dirty = Ese.dirty_between ctx.state ~s_from:ctx.s_star ~s_to:s_total in
  List.fold_left
    (fun acc q ->
      let before = ctx.members.(q) in
      let after = Ese.member_after ctx.state ~s:s_total ~q in
      if after && not before then if cover.(q) = 0 then acc + 1 else acc
      else if before && not after then
        if cover.(q) = 1 then acc - 1 else acc
      else acc)
    0 dirty

let apply_step ctx step =
  let s_total = Vec.add ctx.s_star step in
  let dirty = Ese.dirty_between ctx.state ~s_from:ctx.s_star ~s_to:s_total in
  let members = Array.copy ctx.members in
  List.iter
    (fun q -> members.(q) <- Ese.member_after ctx.state ~s:s_total ~q)
    dirty;
  ctx.s_star <- s_total;
  ctx.members <- members;
  ctx.spent <- ctx.spent +. Cost.(ctx.cost.eval) step

let collect_candidates index ctxs ~cover ~cap ~budget_left ~budget =
  let inst = Query_index.instance index in
  let m = Instance.n_queries inst in
  let raw = ref [] in
  List.iter
    (fun ctx ->
      let current =
        Vec.add inst.Instance.features.(ctx.target) ctx.s_star
      in
      let bounds = Candidates.remaining_bounds ctx.total_bounds ctx.s_star in
      (* A bounded O(m) constraint scan per target; the budget is booked
         once per produced candidate in the union-gain pass below, so a
         per-probe poll here would only add overhead. *)
      (* iqlint: allow budget-unchecked-loop *)
      for q = 0 to m - 1 do
        if cover.(q) = 0 then
          match Ese.hit_constraint ctx.state ~q ~current with
          | None -> ()
          | Some (a, b) -> (
              match ctx.cost.Cost.min_step ~a ~b ~bounds with
              | None -> ()
              | Some step ->
                  let c = ctx.cost.Cost.eval step in
                  let fits =
                    match budget_left with
                    | None -> true
                    | Some left -> c <= left +. 1e-12
                  in
                  if fits then raw := (ctx, step, c) :: !raw)
      done)
    ctxs;
  let sorted =
    List.sort (fun (_, _, c1) (_, _, c2) -> Float.compare c1 c2) !raw
  in
  (* Dedup identical (target, step) pairs before evaluation. *)
  let seen = Hashtbl.create 64 in
  let dedup =
    List.filter
      (fun (ctx, step, _) ->
        let key =
          (ctx.target,
           String.concat ","
             (List.map (Printf.sprintf "%.12g") (Array.to_list step)))
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      sorted
  in
  let capped =
    match cap with
    | None -> dedup
    | Some n -> List.filteri (fun i _ -> i < n) dedup
  in
  (* [union_gain] walks the dirty slab per candidate — the expensive
     part, so it books budget steps and stops once tripped (gain 0
     placeholders; the search re-checks and discards the batch). *)
  List.map
    (fun (ctx, step, step_cost) ->
      Resilience.Budget.step budget 1;
      let union_gain =
        if Resilience.Budget.live budget then union_gain ~cover ctx step
        else 0
      in
      { ctx; step; step_cost; union_gain })
    capped

let ratio c =
  if c.union_gain <= 0 then infinity
  else c.step_cost /. float_of_int c.union_gain

let finish ctxs cover ~before ~iterations ~status =
  {
    strategies = List.map (fun ctx -> (ctx.target, ctx.s_star)) ctxs;
    total_cost =
      List.fold_left
        (fun acc ctx -> acc +. ctx.cost.Cost.eval ctx.s_star)
        0. ctxs;
    union_hits_before = before;
    union_hits_after = union_count cover;
    iterations;
    status;
  }

let resolve_budget = function
  | Some b -> b
  | None -> Resilience.Budget.unlimited

let min_cost ?(limits = []) ?max_iterations ?candidate_cap ?(states = [])
    ?budget ?fault ~index ~costs ~tau () =
  if costs = [] then invalid_arg "Combinatorial.min_cost: no targets";
  let budget = resolve_budget budget in
  let inst = Query_index.instance index in
  let m = Instance.n_queries inst in
  let max_iterations =
    match max_iterations with Some n -> n | None -> (4 * tau) + 32
  in
  let ctxs = List.map (make_ctx index limits states) costs in
  let cover = ref (build_cover ctxs m) in
  let before = union_count !cover in
  let iterations = ref 0 in
  let failed = ref false in
  let degraded = ref None in
  while
    Option.is_none !degraded
    && (not !failed)
    && union_count !cover < tau
    && !iterations < max_iterations
  do
    (* Same anytime discipline as the single-target searches: an
       iteration interrupted mid-collection is discarded whole, so
       per-target strategies and the union count stay exact. *)
    match Resilience.Budget.check budget with
    | Some trip -> degraded := Some trip
    | None -> (
        Resilience.Fault.point fault ~site:"search.iteration";
        incr iterations;
        let candidates =
          collect_candidates index ctxs ~cover:!cover ~cap:candidate_cap
            ~budget_left:None ~budget
        in
        match Resilience.Budget.check budget with
        | Some trip -> degraded := Some trip
        | None -> (
            match candidates with
            | [] -> failed := true
            | c :: cs ->
                let best =
                  List.fold_left
                    (fun acc cand ->
                      if ratio cand < ratio acc then cand else acc)
                    c cs
                in
                if best.union_gain <= 0 then failed := true
                else begin
                  apply_step best.ctx best.step;
                  cover := build_cover ctxs m
                end))
  done;
  match !degraded with
  | Some trip ->
      Some
        (finish ctxs !cover ~before ~iterations:!iterations
           ~status:(`Degraded trip))
  | None ->
      if union_count !cover < tau then None
      else Some (finish ctxs !cover ~before ~iterations:!iterations ~status:`Complete)

let max_hit ?(limits = []) ?max_iterations ?candidate_cap ?(states = [])
    ?budget ?fault ~index ~costs ~beta () =
  if costs = [] then invalid_arg "Combinatorial.max_hit: no targets";
  let budget = resolve_budget budget in
  let inst = Query_index.instance index in
  let m = Instance.n_queries inst in
  let max_iterations =
    match max_iterations with Some n -> n | None -> 256
  in
  let ctxs = List.map (make_ctx index limits states) costs in
  let cover = ref (build_cover ctxs m) in
  let before = union_count !cover in
  let spent () = List.fold_left (fun acc ctx -> acc +. ctx.spent) 0. ctxs in
  let iterations = ref 0 in
  let stop = ref false in
  let degraded = ref None in
  while
    Option.is_none !degraded
    && (not !stop)
    && !iterations < max_iterations
    && spent () < beta
  do
    match Resilience.Budget.check budget with
    | Some trip -> degraded := Some trip
    | None -> (
        Resilience.Fault.point fault ~site:"search.iteration";
        incr iterations;
        let budget_left = beta -. spent () in
        let candidates =
          collect_candidates index ctxs ~cover:!cover ~cap:candidate_cap
            ~budget_left:(Some budget_left) ~budget
        in
        match Resilience.Budget.check budget with
        | Some trip -> degraded := Some trip
        | None -> (
            match candidates with
            | [] -> stop := true
            | c :: cs ->
                let best =
                  List.fold_left
                    (fun acc cand ->
                      if ratio cand < ratio acc then cand else acc)
                    c cs
                in
                if best.union_gain <= 0 || best.step_cost > budget_left then
                  stop := true
                else begin
                  apply_step best.ctx best.step;
                  cover := build_cover ctxs m
                end))
  done;
  let status =
    match !degraded with Some trip -> `Degraded trip | None -> `Complete
  in
  finish ctxs !cover ~before ~iterations:!iterations ~status
