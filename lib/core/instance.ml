open Geom

type t = {
  raw : Vec.t array;
  features : Vec.t array;
  flat : Flat.t; (* SoA view of [features]; patched in step with it *)
  utility : Topk.Utility.t;
  order : Topk.Utility.order;
  queries : Topk.Query.t array;
  qflat : Flat.t; (* SoA view of the query weight vectors *)
}

let qweights queries = Array.map (fun q -> q.Topk.Query.weights) queries

let create ?utility ?(order = Topk.Utility.Asc) ~data ~queries () =
  if Array.length data = 0 then invalid_arg "Instance.create: empty data";
  let d_raw = Vec.dim data.(0) in
  let utility =
    match utility with Some u -> u | None -> Topk.Utility.linear d_raw
  in
  if utility.Topk.Utility.dim_in <> d_raw then
    invalid_arg "Instance.create: utility dim_in mismatch";
  Array.iter
    (fun p ->
      if Vec.dim p <> d_raw then
        invalid_arg "Instance.create: ragged object attributes")
    data;
  let features = Array.map utility.Topk.Utility.features data in
  let queries =
    Array.of_list
      (List.map
         (fun (q : Topk.Query.t) ->
           if Vec.dim q.Topk.Query.weights <> utility.Topk.Utility.dim_out
           then invalid_arg "Instance.create: query weight arity mismatch";
           {
             q with
             Topk.Query.weights =
               Topk.Utility.effective_weights order q.Topk.Query.weights;
           })
         queries)
  in
  {
    raw = data;
    features;
    flat = Flat.of_rows features;
    utility;
    order;
    queries;
    qflat = Flat.of_rows (qweights queries);
  }

let n_objects t = Array.length t.features
let n_queries t = Array.length t.queries
let dim t = t.utility.Topk.Utility.dim_out
let dim_raw t = t.utility.Topk.Utility.dim_in

let max_k t =
  Array.fold_left (fun acc q -> Int.max acc q.Topk.Query.k) 1 t.queries

let score t ~q id = Vec.dot t.queries.(q).Topk.Query.weights t.features.(id)
let score_vec t ~q v = Vec.dot t.queries.(q).Topk.Query.weights v
let improved t ~target ~s = Vec.add t.features.(target) s

let with_feature t ~target v =
  let features = Array.copy t.features in
  features.(target) <- v;
  let raw =
    if t.utility.Topk.Utility.dim_in = t.utility.Topk.Utility.dim_out then begin
      (* Linear utilities: feature space IS raw space. *)
      let raw = Array.copy t.raw in
      raw.(target) <- v;
      raw
    end
    else t.raw
  in
  { t with raw; features; flat = Flat.update_row t.flat target v }

let query_points t = Array.map (fun q -> q.Topk.Query.weights) t.queries

let add_query t (q : Topk.Query.t) =
  if Vec.dim q.Topk.Query.weights <> t.utility.Topk.Utility.dim_out then
    invalid_arg "Instance.add_query: weight arity mismatch";
  let q =
    {
      q with
      Topk.Query.weights =
        Topk.Utility.effective_weights t.order q.Topk.Query.weights;
    }
  in
  {
    t with
    queries = Array.append t.queries [| q |];
    qflat = Flat.append_row t.qflat q.Topk.Query.weights;
  }

let remove_query t i =
  let m = Array.length t.queries in
  if i < 0 || i >= m then invalid_arg "Instance.remove_query: bad index";
  let queries =
    Array.init (m - 1) (fun j -> if j < i then t.queries.(j) else t.queries.(j + 1))
  in
  { t with queries; qflat = Flat.remove_row t.qflat i }

let add_object t raw_attrs =
  if Vec.dim raw_attrs <> t.utility.Topk.Utility.dim_in then
    invalid_arg "Instance.add_object: attribute arity mismatch";
  let feat = t.utility.Topk.Utility.features raw_attrs in
  {
    t with
    raw = Array.append t.raw [| raw_attrs |];
    features = Array.append t.features [| feat |];
    flat = Flat.append_row t.flat feat;
  }

let update_object t id raw_attrs =
  let n = Array.length t.features in
  if id < 0 || id >= n then invalid_arg "Instance.update_object: bad id";
  if Vec.dim raw_attrs <> t.utility.Topk.Utility.dim_in then
    invalid_arg "Instance.update_object: attribute arity mismatch";
  let raw = Array.copy t.raw in
  let features = Array.copy t.features in
  raw.(id) <- raw_attrs;
  features.(id) <- t.utility.Topk.Utility.features raw_attrs;
  { t with raw; features; flat = Flat.update_row t.flat id features.(id) }

let remove_object t id =
  let n = Array.length t.features in
  if n <= 1 then invalid_arg "Instance.remove_object: last object";
  if id < 0 || id >= n then invalid_arg "Instance.remove_object: bad id";
  let drop arr =
    Array.init (n - 1) (fun j -> if j < id then arr.(j) else arr.(j + 1))
  in
  {
    t with
    raw = drop t.raw;
    features = drop t.features;
    flat = Flat.remove_row t.flat id;
  }
