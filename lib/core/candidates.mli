(** Shared candidate-step collection for the greedy searches
    (Algorithms 3 and 4): one cheapest step per not-yet-hit query,
    deduplicated (queries in the same subdomain induce identical
    steps), cheapest-first, optionally capped before the expensive
    hit-count evaluations. *)

open Geom

type t = { step : Vec.t; step_cost : float; hits : int }

val collect :
  ?pool:Parallel.pool ->
  ?budget:Resilience.Budget.t ->
  ?fault:Resilience.Fault.t ->
  evaluator:Evaluator.t ->
  cost:Cost.t ->
  bounds:Lp.Projection.bounds ->
  current:Vec.t ->
  s_star:Vec.t ->
  cap:int option ->
  ?max_step_cost:float ->
  unit ->
  t list
(** Steps are relative to the accumulated strategy [s_star]; [hits] is
    the evaluator's total hit count for [s_star + step].
    [max_step_cost] drops candidates above a cost ceiling (the budget
    filter of Algorithm 4) before evaluation.

    [pool] fans the per-candidate hit-count evaluations out across a
    {!Parallel} pool; collection order, dedup and the cheapest-first
    sort are unchanged, so the returned list is identical to the
    sequential one (the evaluator's [hit_count] must be safe to call
    concurrently — all built-in evaluators are).

    [budget] books one {!Resilience.Budget.step} per evaluation and
    stops evaluating (sequentially per candidate, in a pool at chunk
    boundaries) once the budget trips; the remaining entries carry
    [hits = 0] placeholders, so callers must re-check the budget after
    [collect] and discard the list when it tripped. [fault] consults
    the [pool.task] injection site at every pool chunk boundary. *)

val remaining_bounds :
  Lp.Projection.bounds -> Vec.t -> Lp.Projection.bounds
(** Bounds left for an increment once [s_star] is already applied. *)
