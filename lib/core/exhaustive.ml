open Geom

type outcome = {
  strategy : Strategy.t;
  total_cost : float;
  hits_after : int;
  lps_solved : int;
}

let better (s1, i1) (s2, i2) = s1 < s2 || (s1 = s2 && i1 < i2)

(* Hit constraint (a, b) for query q: a . s <= b makes the target hit. *)
let constraint_for inst ~target ~q =
  let w = inst.Instance.queries.(q).Topk.Query.weights in
  let k = inst.Instance.queries.(q).Topk.Query.k in
  match
    Topk.Eval.kth_score_excluding inst.Instance.features ~weights:w ~k
      ~excl:target
  with
  | None -> None (* unconditional hit *)
  | Some (_, thr) ->
      let margin = 1e-9 *. (1. +. abs_float thr) in
      Some (w, thr -. Vec.dot w inst.Instance.features.(target) -. margin)

(* Minimize sum c_j |s_j| subject to the subset's hit constraints and
   box bounds, via s = u - v with u, v >= 0. *)
let solve_subset ~weights ~bounds ~constraints =
  let d = Array.length weights in
  let obj = Array.append weights weights in
  let rows = ref [] in
  List.iter
    (fun (a, b) ->
      let row =
        Array.init (2 * d) (fun j -> if j < d then a.(j) else -.a.(j - d))
      in
      rows := (row, Lp.Simplex.Le, b) :: !rows)
    constraints;
  (* Box bounds on s = u - v. *)
  for j = 0 to d - 1 do
    let lo = bounds.Lp.Projection.lo.(j) and hi = bounds.Lp.Projection.hi.(j) in
    if hi < infinity then begin
      let row = Array.make (2 * d) 0. in
      row.(j) <- 1.;
      row.(j + d) <- -1.;
      rows := (row, Lp.Simplex.Le, hi) :: !rows
    end;
    if lo > neg_infinity then begin
      let row = Array.make (2 * d) 0. in
      row.(j) <- -1.;
      row.(j + d) <- 1.;
      rows := (row, Lp.Simplex.Le, -.lo) :: !rows
    end
  done;
  match Lp.Simplex.minimize ~objective:obj ~constraints:!rows with
  | Lp.Simplex.Optimal (x, v) ->
      Some (Array.init d (fun j -> x.(j) -. x.(j + d)), v)
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> None

let hit_count_after inst ~target s =
  let v = Vec.add inst.Instance.features.(target) s in
  let m = Instance.n_queries inst in
  let acc = ref 0 in
  for q = 0 to m - 1 do
    let w = inst.Instance.queries.(q).Topk.Query.weights in
    let k = inst.Instance.queries.(q).Topk.Query.k in
    (match
       Topk.Eval.kth_score_excluding inst.Instance.features ~weights:w ~k
         ~excl:target
     with
    | None -> incr acc
    | Some (kth, thr) ->
        if better (Vec.dot w v, target) (thr, kth) then incr acc)
  done;
  !acc

(* All size-[r] subsets of [0..m-1], visited via callback. *)
let iter_subsets m r f =
  let picked = Array.make r 0 in
  let rec go idx start =
    if idx = r then f (Array.copy picked)
    else
      for i = start to m - 1 do
        picked.(idx) <- i;
        go (idx + 1) (i + 1)
      done
  in
  if r = 0 then f [||] else if r <= m then go 0 0

let guard inst =
  if Instance.n_queries inst > 24 then
    invalid_arg "Exhaustive: more than 24 queries (would not terminate)"

let min_cost ?limits ~inst ~weights ~target ~tau () =
  guard inst;
  if tau <= 0 then invalid_arg "Exhaustive.min_cost: tau <= 0";
  let d = Instance.dim inst in
  Array.iter
    (fun w -> if w <= 0. then invalid_arg "Exhaustive.min_cost: weight <= 0")
    weights;
  let limits =
    match limits with Some l -> l | None -> Strategy.unrestricted d
  in
  let bounds =
    Strategy.bounds_for limits ~p:inst.Instance.features.(target)
  in
  let m = Instance.n_queries inst in
  let constraints =
    Array.init m (fun q -> constraint_for inst ~target ~q)
  in
  let free_hits =
    Array.fold_left
      (fun acc c -> match c with None -> acc + 1 | Some _ -> acc)
      0 constraints
  in
  let need = Int.max 0 (tau - free_hits) in
  let conditional =
    List.filter_map Fun.id
      (List.init m (fun q ->
           match constraints.(q) with Some c -> Some c | None -> None))
  in
  let lps = ref 0 in
  let best = ref None in
  let nth_conditional i =
    match List.nth_opt conditional i with
    | Some c -> c
    | None -> invalid_arg "Exhaustive: subset index out of range"
  in
  let consider subset =
    let cs = List.map nth_conditional (Array.to_list subset) in
    incr lps;
    match solve_subset ~weights ~bounds ~constraints:cs with
    | None -> ()
    | Some (s, v) -> (
        match !best with
        | Some (_, v') when v' <= v -> ()
        | _ -> best := Some (s, v))
  in
  iter_subsets (List.length conditional) need consider;
  match !best with
  | None -> None
  | Some (s, v) ->
      Some
        {
          strategy = s;
          total_cost = v;
          hits_after = hit_count_after inst ~target s;
          lps_solved = !lps;
        }

let max_hit ?limits ~inst ~weights ~target ~beta () =
  guard inst;
  if beta < 0. then invalid_arg "Exhaustive.max_hit: beta < 0";
  let d = Instance.dim inst in
  let limits =
    match limits with Some l -> l | None -> Strategy.unrestricted d
  in
  let bounds =
    Strategy.bounds_for limits ~p:inst.Instance.features.(target)
  in
  let m = Instance.n_queries inst in
  let constraints = Array.init m (fun q -> constraint_for inst ~target ~q) in
  let conditional =
    List.filter_map Fun.id
      (List.init m (fun q -> constraints.(q)))
  in
  let n_cond = List.length conditional in
  let nth_conditional i =
    match List.nth_opt conditional i with
    | Some c -> c
    | None -> invalid_arg "Exhaustive: subset index out of range"
  in
  let lps = ref 0 in
  let found = ref None in
  (* Try subset sizes from largest down; first feasible size is optimal
     (forcing a superset is never easier). *)
  let size = ref n_cond in
  while !found = None && !size >= 0 do
    let best_at_size = ref None in
    iter_subsets n_cond !size (fun subset ->
        if !best_at_size = None then begin
          let cs = List.map nth_conditional (Array.to_list subset) in
          incr lps;
          match solve_subset ~weights ~bounds ~constraints:cs with
          | Some (s, v) when v <= beta +. 1e-9 -> best_at_size := Some s
          | Some _ | None -> ()
        end);
    (match !best_at_size with
    | Some s -> found := Some s
    | None -> decr size)
  done;
  let s = match !found with Some s -> s | None -> Strategy.zero d in
  {
    strategy = s;
    total_cost =
      Array.fold_left ( +. ) 0.
        (Array.mapi (fun j x -> weights.(j) *. abs_float x) s);
    hits_after = hit_count_after inst ~target s;
    lps_solved = !lps;
  }
