open Geom

type boundary = { intersection : int; above : bool }

type subdomain = {
  sid : int;
  boundaries : boundary list;
  members : int list;
}

type t = { cells : subdomain list; cell_of : int array }

(* Algorithm 1: start with one subdomain holding every query point;
   for each intersection, split every subdomain it crosses into the
   above / below children, keeping only non-empty cells. *)
let find_subdomains ~intersections ~points =
  let next_sid = ref 0 in
  let fresh () =
    let sid = !next_sid in
    incr next_sid;
    sid
  in
  let initial =
    { sid = fresh (); boundaries = []; members = List.init (Array.length points) Fun.id }
  in
  let split_cell hyper_idx hyper cell =
    let above, below =
      List.partition
        (fun qi -> Hyperplane.above_or_on hyper points.(qi))
        cell.members
    in
    match (above, below) with
    | _, [] | [], _ -> [ cell ] (* intersection does not cross this cell *)
    | _ ->
        [
          {
            sid = fresh ();
            boundaries = { intersection = hyper_idx; above = true } :: cell.boundaries;
            members = above;
          };
          {
            sid = fresh ();
            boundaries = { intersection = hyper_idx; above = false } :: cell.boundaries;
            members = below;
          };
        ]
  in
  let cells =
    Array.to_list intersections
    |> List.mapi (fun i h -> (i, h))
    |> List.fold_left
         (fun cells (i, h) -> List.concat_map (split_cell i h) cells)
         [ initial ]
  in
  let cell_of = Array.make (Array.length points) (-1) in
  List.iter
    (fun cell -> List.iter (fun qi -> cell_of.(qi) <- cell.sid) cell.members)
    cells;
  (* Re-number densely so sids are stable and compact. *)
  let renumber = Hashtbl.create 16 in
  let cells =
    List.mapi
      (fun fresh_sid cell ->
        Hashtbl.add renumber cell.sid fresh_sid;
        { cell with sid = fresh_sid })
      cells
  in
  Array.iteri
    (fun qi sid ->
      match Hashtbl.find_opt renumber sid with
      | Some fresh -> cell_of.(qi) <- fresh
      | None -> invalid_arg "Subdomain: cell id missing from renumbering")
    cell_of;
  { cells; cell_of }

(* O(n^2) pairs: the normal difference, the zero-plane test, and the
   domain-crossing range are fused into one pass over an SoA slab of
   the features, and a hyperplane is allocated only for pairs that
   survive. (The direct form built a [Hyperplane.t] per pair before
   filtering — for a pruning domain, most of them were thrown away.)
   Values and order match [Hyperplane.of_points] + [box_min_max]
   exactly: a hyperplane that keeps the whole query domain on one side
   can never separate two query points, so it is dropped (the paper
   notes empty subdomains are discarded; this prunes them before they
   are even created). *)
let pairwise_intersections ?domain features =
  let n = Array.length features in
  let d = if n = 0 then 0 else Vec.dim features.(0) in
  let fdata = Flat.data (Flat.of_rows features) in
  let scratch = Array.make d 0. in
  let out = ref [] in
  let keep () =
    out := Hyperplane.make ~normal:(Array.copy scratch) ~offset:0. :: !out
  in
  for i = 0 to n - 1 do
    let ioff = i * d in
    for l = i + 1 to n - 1 do
      let loff = l * d in
      let nonzero = ref false in
      (match domain with
      | None ->
          for j = 0 to d - 1 do
            let c = fdata.(ioff + j) -. fdata.(loff + j) in
            scratch.(j) <- c;
            if Fp.nonzero ~eps:0. c then nonzero := true
          done;
          if !nonzero then keep ()
      | Some (box : Box.t) ->
          let lo = box.Box.lo and hi = box.Box.hi in
          let mn = ref (-.0.) and mx = ref (-.0.) in
          for j = 0 to d - 1 do
            let c = fdata.(ioff + j) -. fdata.(loff + j) in
            scratch.(j) <- c;
            if Fp.nonzero ~eps:0. c then nonzero := true;
            if c >= 0. then begin
              mn := !mn +. (c *. lo.(j));
              mx := !mx +. (c *. hi.(j))
            end
            else begin
              mn := !mn +. (c *. hi.(j));
              mx := !mx +. (c *. lo.(j))
            end
          done;
          if !nonzero && !mn < 0. && !mx >= 0. then keep ())
    done
  done;
  Array.of_list (List.rev !out)

let of_instance ?domain inst =
  let intersections = pairwise_intersections ?domain inst.Instance.features in
  let points = Instance.query_points inst in
  (intersections, find_subdomains ~intersections ~points)

let subdomains t = t.cells

let subdomain_of t qi =
  if qi < 0 || qi >= Array.length t.cell_of then
    invalid_arg "Subdomain.subdomain_of: bad query index";
  t.cell_of.(qi)

let count t = List.length t.cells
let same_cell t a b = subdomain_of t a = subdomain_of t b

let boundary_filter t =
  let total =
    List.fold_left (fun acc c -> acc + List.length c.boundaries) 0 t.cells
  in
  let filter = Bloom.create ~expected:(Int.max 1 total) () in
  List.iter
    (fun c -> List.iter (fun b -> Bloom.add filter b.intersection) c.boundaries)
    t.cells;
  filter

let locate t ~intersections point =
  let matches cell =
    List.for_all
      (fun b ->
        let above = Hyperplane.above_or_on intersections.(b.intersection) point in
        above = b.above)
      cell.boundaries
    && cell.members <> []
  in
  match List.find_opt matches t.cells with
  | Some cell -> Some cell.sid
  | None -> None

(* --- Section 4.3 maintenance on the exact partition ----------------- *)

let renumber cells n_points =
  let cell_of = Array.make n_points (-1) in
  let cells =
    List.mapi (fun sid cell -> { cell with sid }) cells
  in
  List.iter
    (fun cell -> List.iter (fun qi -> cell_of.(qi) <- cell.sid) cell.members)
    cells;
  { cells; cell_of }

let n_points t = Array.length t.cell_of

let add_point t ~intersections ~points point =
  let qi = n_points t in
  (* Candidate via the cheap boundary test (the paper's kNN shortcut),
     then verified against a representative member's full sign vector —
     recorded boundaries are only the splits that happened, which does
     not discriminate on intersections that never crossed the cell. *)
  let agrees_with member =
    Array.for_all
      (fun h ->
        Hyperplane.above_or_on h point
        = Hyperplane.above_or_on h points.(member))
      intersections
  in
  let candidate =
    match locate t ~intersections point with
    | Some sid -> List.find_opt (fun c -> c.sid = sid) t.cells
    | None -> None
  in
  let verified =
    match candidate with
    | Some cell -> (
        match cell.members with
        | member :: _ when agrees_with member -> Some cell
        | _ -> (
            (* Fallback: scan every populated cell for a sign match. *)
            match
              List.find_opt
                (fun c ->
                  match c.members with
                  | member :: _ -> agrees_with member
                  | [] -> false)
                t.cells
            with
            | Some c -> Some c
            | None -> None))
    | None ->
        List.find_opt
          (fun c ->
            match c.members with
            | member :: _ -> agrees_with member
            | [] -> false)
          t.cells
  in
  let cells =
    match verified with
    | Some cell ->
        List.map
          (fun c ->
            if c.sid = cell.sid then { c with members = qi :: c.members }
            else c)
          t.cells
    | None ->
        (* A fresh region: sign the point against every intersection
           (a superset of its minimal boundary set, which is safe). *)
        let boundaries =
          Array.to_list intersections
          |> List.mapi (fun i h ->
                 { intersection = i; above = Hyperplane.above_or_on h point })
        in
        { sid = -1; boundaries; members = [ qi ] } :: t.cells
  in
  (renumber cells (qi + 1), qi)

let remove_point t qi =
  if qi < 0 || qi >= n_points t then
    invalid_arg "Subdomain.remove_point: bad index";
  let shift j = if j > qi then j - 1 else j in
  let cells =
    t.cells
    |> List.map (fun cell ->
           {
             cell with
             members =
               List.filter_map
                 (fun j -> if j = qi then None else Some (shift j))
                 cell.members;
           })
    |> List.filter (fun cell -> cell.members <> [])
  in
  renumber cells (n_points t - 1)

let split_by t ~points ~first_index new_hyperplanes =
  let split_cell hyper_idx hyper cell =
    let above, below =
      List.partition
        (fun qi -> Hyperplane.above_or_on hyper points.(qi))
        cell.members
    in
    match (above, below) with
    | _, [] | [], _ -> [ cell ]
    | _ ->
        [
          {
            sid = -1;
            boundaries =
              { intersection = hyper_idx; above = true } :: cell.boundaries;
            members = above;
          };
          {
            sid = -1;
            boundaries =
              { intersection = hyper_idx; above = false } :: cell.boundaries;
            members = below;
          };
        ]
  in
  let cells =
    Array.to_list new_hyperplanes
    |> List.mapi (fun i h -> (first_index + i, h))
    |> List.fold_left
         (fun cells (i, h) -> List.concat_map (split_cell i h) cells)
         t.cells
  in
  renumber cells (n_points t)

let merge_removed t ~points ~kept ~removed ~remap =
  let filter = boundary_filter t in
  let maybe_affected =
    List.exists (fun i -> Bloom.mem filter i) removed
  in
  let is_removed i = List.mem i removed in
  let affected, untouched =
    if not maybe_affected then ([], t.cells)
    else
      List.partition
        (fun cell ->
          List.exists (fun b -> is_removed b.intersection) cell.boundaries)
        t.cells
  in
  let untouched =
    List.map
      (fun cell ->
        {
          cell with
          boundaries =
            List.map
              (fun b -> { b with intersection = remap b.intersection })
              cell.boundaries;
        })
      untouched
  in
  (* Re-partition the affected members among themselves with the kept
     intersections: cells separated only by a dead intersection merge. *)
  let affected_members = List.concat_map (fun c -> c.members) affected in
  let merged =
    match affected_members with
    | [] -> []
    | members ->
        let sub_points = Array.of_list (List.map (fun qi -> points.(qi)) members) in
        let sub = find_subdomains ~intersections:kept ~points:sub_points in
        let members_arr = Array.of_list members in
        List.map
          (fun cell ->
            {
              cell with
              members = List.map (fun i -> members_arr.(i)) cell.members;
            })
          sub.cells
  in
  renumber (untouched @ merged) (n_points t)
