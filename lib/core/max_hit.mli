(** Max-Hit Improvement Query — Algorithm 4.

    Same greedy cost-per-hit search as Algorithm 3, but driven by a
    budget [beta]: apply best-ratio steps while they fit; once the best
    ratio no longer fits, sweep the remaining candidates cheapest-first
    and apply any that still fit, then stop. Budget accounting uses the
    per-step (incremental) costs, as the paper's pseudocode does. *)

type status = [ `Complete | `Degraded of Resilience.Budget.trip ]
(** As in {!Min_cost.status}: a degraded outcome is the anytime
    answer, exact but possibly short of what a full run would buy. *)

type outcome = {
  strategy : Strategy.t;
  total_cost : float;  (** [Cost(s)] of the accumulated strategy *)
  incremental_cost : float;  (** budget actually consumed *)
  hits_before : int;
  hits_after : int;
  iterations : int;
  evaluations : int;
  status : status;
}

val search :
  ?limits:Strategy.limits ->
  ?max_iterations:int ->
  ?candidate_cap:int ->
  ?pool:Parallel.pool ->
  ?budget:Resilience.Budget.t ->
  ?fault:Resilience.Fault.t ->
  evaluator:Evaluator.t ->
  cost:Cost.t ->
  target:int ->
  beta:float ->
  unit ->
  outcome
(** Always returns: a budget that buys nothing — including [beta <= 0]
    — yields the zero strategy with nothing spent. Budget validation
    lives in {!Engine}, which reports a typed [Budget_exhausted] error
    for negative budgets instead of raising.
    [pool] parallelizes each iteration's candidate evaluations with
    order preserved and lowest-index tie-breaking, so outcomes are
    identical for any pool size.
    [budget]/[fault] behave as in {!Min_cost.search}: a tripped budget
    returns the strategy accumulated so far with
    [status = `Degraded _].
    @raise Invalid_argument when the cost arity differs from the
    instance's feature dimension (a wiring bug, not an input error). *)

val per_hit_cost : outcome -> float
