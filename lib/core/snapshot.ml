type entry = {
  e_eval : Evaluator.t;
  e_state : Ese.state option;
  e_pos : int;
  e_bname : string;
}

type t = {
  generation : int;
  index : Query_index.t;
  prune : bool;
  lock : Mutex.t;
  cache : (int, entry) Hashtbl.t;
  mutable onion : Topk.Onion.t option;
      (* both mutable members are lock-guarded caches of pure
         functions of the frozen [index]; see the interface *)
}

let make ~generation ~prune index =
  {
    generation;
    index;
    prune;
    lock = Mutex.create ();
    cache = Hashtbl.create 16;
    onion = None;
  }

let root ?(generation = 0) ~prune index = make ~generation ~prune index

let next t index = make ~generation:(t.generation + 1) ~prune:t.prune index

let generation t = t.generation

let index t = t.index

let instance t = Query_index.instance t.index

let pruning t = t.prune

let size_words t = Query_index.size_words t.index

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_entry t target = Hashtbl.find_opt t.cache target

let set_entry t target e = Hashtbl.replace t.cache target e

let layers t =
  if not t.prune then None
  else begin
    let onion =
      match t.onion with
      | Some onion -> onion
      | None ->
          let onion =
            Topk.Onion.build (Query_index.instance t.index).Instance.features
          in
          t.onion <- Some onion;
          onion
    in
    Some (Topk.Onion.layer_of onion)
  end

let onion_layers t = Option.map Topk.Onion.layer_count t.onion

let eval_total t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ e acc -> acc + e.e_eval.Evaluator.evaluations ())
        t.cache 0)
