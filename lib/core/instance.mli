(** A problem instance: objects interpreted as functions plus the
    top-k query workload.

    Everything downstream works in the {e feature space} of the chosen
    utility family. For linear utilities the feature space is the raw
    attribute space and strategies coincide with the paper's Definition
    1 exactly; for Section 5.2 utilities the instance stores each
    object's variable-substituted image and strategies adjust that
    image (see {!Nonlinear} for mapping such strategies back to raw
    attribute adjustments when the map is invertible). [Desc]-order
    workloads are normalized to the minimizing convention by negating
    weights at construction. *)

open Geom

type t = private {
  raw : Vec.t array;  (** original object attributes *)
  features : Vec.t array;  (** [utility.features] image; the functions *)
  flat : Flat.t;
      (** SoA view of [features], kept in sync through every functional
          update (mutations patch the slab rather than rebuild) *)
  utility : Topk.Utility.t;
  order : Topk.Utility.order;
  queries : Topk.Query.t array;  (** weights in feature space, minimizing *)
  qflat : Flat.t;  (** SoA view of the query weight vectors *)
}

val create :
  ?utility:Topk.Utility.t ->
  ?order:Topk.Utility.order ->
  data:Vec.t array ->
  queries:Topk.Query.t list ->
  unit ->
  t
(** [utility] defaults to linear over the data's arity; [order] to
    [Asc]. Query weights must live in the utility's feature space.
    @raise Invalid_argument on arity mismatches or empty data. *)

val n_objects : t -> int

val n_queries : t -> int

val dim : t -> int
(** Feature-space dimension (the space strategies live in). *)

val dim_raw : t -> int

val max_k : t -> int

val score : t -> q:int -> int -> float
(** Score of object [id] under query [q] (minimizing convention). *)

val score_vec : t -> q:int -> Vec.t -> float
(** Score of an arbitrary feature vector under query [q]. *)

val improved : t -> target:int -> s:Strategy.t -> Vec.t
(** The target's feature vector after applying a feature-space
    strategy. *)

val with_feature : t -> target:int -> Vec.t -> t
(** A copy of the instance where [target]'s feature vector is replaced —
    used by baselines that re-evaluate from scratch. The [raw] entry is
    replaced too when the utility is linear, left unchanged otherwise. *)

val query_points : t -> Vec.t array
(** Query weight vectors as points of the function domain. *)

(** {2 Dataset maintenance (Section 4.3 support)} *)

val add_query : t -> Topk.Query.t -> t
(** Append a query (weights in the utility's feature space; the
    instance's order convention is applied). Existing query indices are
    unchanged; the new query gets index [n_queries]. *)

val remove_query : t -> int -> t
(** Remove the query at an index; later queries shift down by one. *)

val add_object : t -> Vec.t -> t
(** Append an object given by raw attributes; it gets id [n_objects]. *)

val update_object : t -> int -> Vec.t -> t
(** Replace object [id]'s raw attributes in place (its feature image is
    recomputed); the id and every other object are unchanged. *)

val remove_object : t -> int -> t
(** Remove an object id; later ids shift down by one. *)
