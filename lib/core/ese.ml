open Geom

type state = {
  index : Query_index.t;
  target : int;
  members : bool array;
  base : int;
  domain_lo : Vec.t;
  domain_hi : Vec.t;
  (* Atomic so one state can serve concurrent candidate evaluations
     from a Parallel pool; everything else in the state is frozen
     after [prepare]. *)
  eval_count : int Atomic.t;
}

let better (s1, i1) (s2, i2) = s1 < s2 || (s1 = s2 && i1 < i2)

let prepare index ~target =
  let inst = Query_index.instance index in
  let m = Instance.n_queries inst in
  let members = Array.init m (fun q -> Query_index.member index ~q target) in
  let base = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 members in
  let d = Instance.dim inst in
  let domain_lo = Vec.make d infinity and domain_hi = Vec.make d neg_infinity in
  Array.iter
    (fun (q : Topk.Query.t) ->
      let w = q.Topk.Query.weights in
      for j = 0 to d - 1 do
        if w.(j) < domain_lo.(j) then domain_lo.(j) <- w.(j);
        if w.(j) > domain_hi.(j) then domain_hi.(j) <- w.(j)
      done)
    inst.Instance.queries;
  {
    index;
    target;
    members;
    base;
    domain_lo;
    domain_hi;
    eval_count = Atomic.make 0;
  }

let target t = t.target
let base_hits t = t.base
let member t ~q = t.members.(q)

let member_after t ~s ~q =
  let inst = Query_index.instance t.index in
  let w = inst.Instance.queries.(q).Topk.Query.weights in
  match Query_index.kth_other t.index ~q ~target:t.target with
  | None -> true
  | Some kth ->
      let new_score = Vec.dot w (Instance.improved inst ~target:t.target ~s) in
      let thr = Vec.dot w inst.Instance.features.(kth) in
      better (new_score, t.target) (thr, kth)

(* Interval of [n . q] over the bounding box of the query points. *)
let dot_range t n =
  let lo = ref 0. and hi = ref 0. in
  Array.iteri
    (fun j c ->
      if c >= 0. then begin
        lo := !lo +. (c *. t.domain_lo.(j));
        hi := !hi +. (c *. t.domain_hi.(j))
      end
      else begin
        lo := !lo +. (c *. t.domain_hi.(j));
        hi := !hi +. (c *. t.domain_lo.(j))
      end)
    n;
  (!lo, !hi)

(* Queries whose order against some rival flips between the target's
   position at [s_from] and at [s_to] (both relative to the base
   feature vector). The plain evaluation path uses
   [s_from = zero]. *)
let collect_dirty_between t ~s_from ~s_to f =
  let inst = Query_index.instance t.index in
  let feat_t = inst.Instance.features.(t.target) in
  let visit rival =
    if rival <> t.target then begin
      let base = Vec.sub feat_t inst.Instance.features.(rival) in
      let nb = Vec.add base s_from in
      let na = Vec.add base s_to in
      (* Cheap global prune before the R-tree slab search. *)
      let bmin, bmax = dot_range t nb in
      let amin, amax = dot_range t na in
      let flip_possible = (bmax >= 0. && amin < 0.) || (bmin < 0. && amax >= 0.) in
      if flip_possible then
        Query_index.slab_queries t.index ~normal_before:nb ~normal_after:na f
    end
  in
  Array.iter visit (Query_index.candidate_rivals t.index)

let collect_dirty t ~s f =
  let d = Vec.dim s in
  collect_dirty_between t ~s_from:(Vec.zero d) ~s_to:s f

let dirty_queries t ~s =
  let seen = Hashtbl.create 64 in
  collect_dirty t ~s (fun qi -> Hashtbl.replace seen qi ());
  Hashtbl.fold (fun qi () acc -> qi :: acc) seen [] |> List.sort Int.compare

let dirty_between t ~s_from ~s_to =
  let seen = Hashtbl.create 64 in
  collect_dirty_between t ~s_from ~s_to (fun qi -> Hashtbl.replace seen qi ());
  Hashtbl.fold (fun qi () acc -> qi :: acc) seen [] |> List.sort Int.compare

let evaluate t ~s =
  Atomic.incr t.eval_count;
  if Vec.is_zero ~eps:0. s then t.base
  else begin
    let seen = Hashtbl.create 64 in
    collect_dirty t ~s (fun qi -> Hashtbl.replace seen qi ());
    Hashtbl.fold
      (fun qi () acc ->
        let before = t.members.(qi) in
        let after = member_after t ~s ~q:qi in
        acc + (if after && not before then 1 else 0)
        - (if before && not after then 1 else 0))
      seen t.base
  end

let hit_constraint t ~q ~current =
  let inst = Query_index.instance t.index in
  let w = inst.Instance.queries.(q).Topk.Query.weights in
  match Query_index.kth_other t.index ~q ~target:t.target with
  | None -> None
  | Some kth ->
      let thr = Vec.dot w inst.Instance.features.(kth) in
      let margin = 1e-9 *. (1. +. abs_float thr) in
      (* Need w . (current + s) < thr (or tie broken by id). Use the
         strict margin so ids never decide. *)
      let b = thr -. Vec.dot w current -. margin in
      Some (w, b)

let evaluations t = Atomic.get t.eval_count
