open Geom

(* How candidate strategies are classified against rivals.

   [Full] is the original path: every cached prefix object is a
   candidate rival, and flipped queries are found with the R-tree slab
   search (a query may be flagged through several rivals, so callers
   dedup). [Kth] is the pruned path: the target's membership in query
   [q] depends only on the comparison against the frozen rank-k rival
   [kth_other q] (prefixes do not move while a state is alive), so the
   exact minimal rival set is [{ kth_other q : q }]. We store it as a
   CSR index — queries grouped by their kth rival — and test each
   rival's disjoint query block directly, with no R-tree walk and no
   dedup. Both paths flag a query with the same sign test on the same
   floats, so [evaluate] results are bit-for-bit identical. *)
type mode =
  | Full
  | Kth of {
      rivals : int array; (* distinct kth rivals, ascending *)
      roff : int array; (* CSR offsets into [rq]; length rivals+1 *)
      rq : int array; (* query ids grouped by kth rival *)
    }

type state = {
  index : Query_index.t;
  target : int;
  members : bool array;
  base : int;
  domain_lo : Vec.t;
  domain_hi : Vec.t;
  dim : int;
  fdata : float array; (* Instance feature slab ([Flat.data]) *)
  wdata : float array; (* query-weight slab *)
  kth : int array; (* per-query rank-k rival; -1 = unconditional hit *)
  thr : float array; (* per-query threshold [w . features.(kth)] *)
  mode : mode;
  (* Atomic so one state can serve concurrent candidate evaluations
     from a Parallel pool; everything else in the state is frozen
     after [prepare]. *)
  eval_count : int Atomic.t;
}

let better (s1, i1) (s2, i2) = s1 < s2 || (s1 = s2 && i1 < i2)

(* Group queries by their kth rival into a CSR index. Counting sort
   over object ids keeps rivals ascending and blocks in query order. *)
let build_kth_csr kth ~n_objects =
  let counts = Array.make n_objects 0 in
  let m = Array.length kth in
  for q = 0 to m - 1 do
    if kth.(q) >= 0 then counts.(kth.(q)) <- counts.(kth.(q)) + 1
  done;
  let n_rivals = ref 0 in
  for id = 0 to n_objects - 1 do
    if counts.(id) > 0 then incr n_rivals
  done;
  let rivals = Array.make !n_rivals 0 in
  let roff = Array.make (!n_rivals + 1) 0 in
  let slot = Array.make n_objects (-1) in
  let next = ref 0 in
  for id = 0 to n_objects - 1 do
    if counts.(id) > 0 then begin
      rivals.(!next) <- id;
      slot.(id) <- !next;
      roff.(!next + 1) <- roff.(!next) + counts.(id);
      incr next
    end
  done;
  let rq = Array.make roff.(!n_rivals) 0 in
  let cursor = Array.copy roff in
  for q = 0 to m - 1 do
    if kth.(q) >= 0 then begin
      let s = slot.(kth.(q)) in
      rq.(cursor.(s)) <- q;
      cursor.(s) <- cursor.(s) + 1
    end
  done;
  Kth { rivals; roff; rq }

(* The dominance-layer certificate (see DESIGN.md, "Hot-path layout &
   pruning"). Pruning to the kth-rival set is exact unconditionally;
   the certificate additionally checks the geometric fact the k-regret
   literature prunes by — every rank-k rival sits within the first
   [k+1] onion/dominance layers (0-based: [layers kth <= k]), which
   needs minimizing non-negative weights (Desc-order instances negate
   weights at construction and fail here). A failed certificate means
   the layer reasoning does not apply to this instance, so we keep the
   conservative Full path rather than argue from geometry we cannot
   witness. *)
let certificate_holds inst ~layers ~kth =
  let queries = inst.Instance.queries in
  let m = Array.length queries in
  let ok = ref true in
  (try
     for q = 0 to m - 1 do
       let w = queries.(q).Topk.Query.weights in
       for j = 0 to Array.length w - 1 do
         if w.(j) < 0. then begin
           ok := false;
           raise Exit
         end
       done;
       if kth.(q) >= 0 && layers kth.(q) > queries.(q).Topk.Query.k then begin
         ok := false;
         raise Exit
       end
     done
   with Exit -> ());
  !ok

let prepare ?layers index ~target =
  let inst = Query_index.instance index in
  let m = Instance.n_queries inst in
  let members = Array.init m (fun q -> Query_index.member index ~q target) in
  let base = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 members in
  let d = Instance.dim inst in
  let domain_lo = Vec.make d infinity and domain_hi = Vec.make d neg_infinity in
  Array.iter
    (fun (q : Topk.Query.t) ->
      let w = q.Topk.Query.weights in
      for j = 0 to d - 1 do
        if w.(j) < domain_lo.(j) then domain_lo.(j) <- w.(j);
        if w.(j) > domain_hi.(j) then domain_hi.(j) <- w.(j)
      done)
    inst.Instance.queries;
  let flat = inst.Instance.flat in
  let kth = Array.make m (-1) in
  let thr = Array.make m 0. in
  for q = 0 to m - 1 do
    match Query_index.kth_other index ~q ~target with
    | None -> ()
    | Some id ->
        kth.(q) <- id;
        (* Same accumulation as [Vec.dot w features.(id)]. *)
        thr.(q) <- Flat.dot flat id inst.Instance.queries.(q).Topk.Query.weights
  done;
  let mode =
    match layers with
    | Some layers when certificate_holds inst ~layers ~kth ->
        build_kth_csr kth ~n_objects:(Instance.n_objects inst)
    | Some _ | None -> Full
  in
  {
    index;
    target;
    members;
    base;
    domain_lo;
    domain_hi;
    dim = d;
    fdata = Flat.data flat;
    wdata = Flat.data inst.Instance.qflat;
    kth;
    thr;
    mode;
    eval_count = Atomic.make 0;
  }

let target t = t.target
let base_hits t = t.base
let member t ~q = t.members.(q)
let pruned t = match t.mode with Full -> false | Kth _ -> true

let rival_count t =
  match t.mode with
  | Kth { rivals; _ } -> Array.length rivals
  | Full -> Array.length (Query_index.candidate_rivals t.index)

let member_after t ~s ~q =
  match t.kth.(q) with
  | -1 -> true
  | kth ->
      if Array.length s <> t.dim then
        invalid_arg "Geom.Vec: dimension mismatch";
      (* [w . (feat_target + s)] with the accumulation sequence of
         [Vec.dot w (Vec.add feat_target s)]. *)
      let woff = q * t.dim and toff = t.target * t.dim in
      let acc = ref 0. in
      for j = 0 to t.dim - 1 do
        acc := !acc +. (t.wdata.(woff + j) *. (t.fdata.(toff + j) +. s.(j)))
      done;
      better (!acc, t.target) (t.thr.(q), kth)

(* Per-rival slab setup, shared by both modes: fill the [nb]/[na]
   scratch normals for the slab between [target + s_from] and
   [target + s_to], and range each over the query bounding box in the
   same pass (the boxed path allocated three vectors per rival here).
   Accumulation order matches the original [Vec.sub]/[Vec.add] +
   [dot_range] sequence exactly. Returns whether a sign flip inside
   the box is possible. *)
let fill_slab t ~rival ~s_from ~s_to ~nb ~na =
  let d = t.dim in
  if Array.length s_from <> d || Array.length s_to <> d then
    invalid_arg "Geom.Vec: dimension mismatch";
  let fdata = t.fdata in
  let toff = t.target * d and roff = rival * d in
  let blo = ref 0. and bhi = ref 0. in
  let alo = ref 0. and ahi = ref 0. in
  for j = 0 to d - 1 do
    let base = fdata.(toff + j) -. fdata.(roff + j) in
    let vb = base +. s_from.(j) and va = base +. s_to.(j) in
    nb.(j) <- vb;
    na.(j) <- va;
    if vb >= 0. then begin
      blo := !blo +. (vb *. t.domain_lo.(j));
      bhi := !bhi +. (vb *. t.domain_hi.(j))
    end
    else begin
      blo := !blo +. (vb *. t.domain_hi.(j));
      bhi := !bhi +. (vb *. t.domain_lo.(j))
    end;
    if va >= 0. then begin
      alo := !alo +. (va *. t.domain_lo.(j));
      ahi := !ahi +. (va *. t.domain_hi.(j))
    end
    else begin
      alo := !alo +. (va *. t.domain_hi.(j));
      ahi := !ahi +. (va *. t.domain_lo.(j))
    end
  done;
  (!bhi >= 0. && !alo < 0.) || (!blo < 0. && !ahi >= 0.)

(* Queries whose order against some rival flips between the target's
   position at [s_from] and at [s_to] (both relative to the base
   feature vector). The plain evaluation path uses [s_from = zero].
   Scratch normals live per call, not per state: one state serves
   concurrent evaluations from a Parallel pool. *)
let collect_dirty_between t ~s_from ~s_to f =
  let d = t.dim in
  let nb = Array.make d 0. and na = Array.make d 0. in
  match t.mode with
  | Full ->
      let visit rival =
        if rival <> t.target then
          if fill_slab t ~rival ~s_from ~s_to ~nb ~na then
            Query_index.slab_queries t.index ~normal_before:nb ~normal_after:na
              f
      in
      Array.iter visit (Query_index.candidate_rivals t.index)
  | Kth { rivals; roff; rq } ->
      (* [kth_other] never returns the target, so no skip needed. Each
         rival's query block is tested with the slab entry predicate
         inlined: a query flips when the plane's sign at its weight
         point differs before/after. Blocks partition the queries that
         can change, so [f] sees each query at most once. *)
      let wdata = t.wdata in
      for ri = 0 to Array.length rivals - 1 do
        if fill_slab t ~rival:rivals.(ri) ~s_from ~s_to ~nb ~na then
          for c = roff.(ri) to roff.(ri + 1) - 1 do
            let qi = rq.(c) in
            let woff = qi * d in
            let db = ref 0. and da = ref 0. in
            for j = 0 to d - 1 do
              db := !db +. (nb.(j) *. wdata.(woff + j));
              da := !da +. (na.(j) *. wdata.(woff + j))
            done;
            if !db >= 0. <> (!da >= 0.) then f qi
          done
      done

let collect_dirty t ~s f =
  let d = Vec.dim s in
  collect_dirty_between t ~s_from:(Vec.zero d) ~s_to:s f

let dirty_queries t ~s =
  let seen = Hashtbl.create 64 in
  collect_dirty t ~s (fun qi -> Hashtbl.replace seen qi ());
  Hashtbl.fold (fun qi () acc -> qi :: acc) seen [] |> List.sort Int.compare

let dirty_between t ~s_from ~s_to =
  let seen = Hashtbl.create 64 in
  collect_dirty_between t ~s_from ~s_to (fun qi -> Hashtbl.replace seen qi ());
  Hashtbl.fold (fun qi () acc -> qi :: acc) seen [] |> List.sort Int.compare

let evaluate t ~s =
  Atomic.incr t.eval_count;
  if Vec.is_zero ~eps:0. s then t.base
  else
    match t.mode with
    | Full ->
        (* A query can be flagged through several rivals here, so dedup
           before applying membership deltas. *)
        let seen = Hashtbl.create 64 in
        collect_dirty t ~s (fun qi -> Hashtbl.replace seen qi ());
        Hashtbl.fold
          (fun qi () acc ->
            let before = t.members.(qi) in
            let after = member_after t ~s ~q:qi in
            acc
            + (if after && not before then 1 else 0)
            - (if before && not after then 1 else 0))
          seen t.base
    | Kth _ ->
        (* Disjoint CSR blocks: each dirty query arrives exactly once. *)
        let acc = ref t.base in
        collect_dirty t ~s (fun qi ->
            let before = t.members.(qi) in
            let after = member_after t ~s ~q:qi in
            if after && not before then incr acc
            else if before && not after then decr acc);
        !acc

let hit_constraint t ~q ~current =
  if t.kth.(q) = -1 then None
  else begin
    let inst = Query_index.instance t.index in
    let w = inst.Instance.queries.(q).Topk.Query.weights in
    let thr = t.thr.(q) in
    let margin = 1e-9 *. (1. +. abs_float thr) in
    (* Need w . (current + s) < thr (or tie broken by id). Use the
       strict margin so ids never decide. *)
    let b = thr -. Vec.dot w current -. margin in
    Some (w, b)
  end

let evaluations t = Atomic.get t.eval_count
