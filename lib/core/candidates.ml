open Geom

type t = { step : Vec.t; step_cost : float; hits : int }

let remaining_bounds total s_star =
  {
    Lp.Projection.lo = Vec.sub total.Lp.Projection.lo s_star;
    hi = Vec.sub total.Lp.Projection.hi s_star;
  }

let step_key step =
  String.concat ","
    (List.map (fun x -> Printf.sprintf "%.12g" x) (Array.to_list step))

let collect ?pool ?budget ?fault ~(evaluator : Evaluator.t) ~(cost : Cost.t)
    ~bounds ~current ~s_star ~cap ?max_step_cost () =
  let budget =
    match budget with Some b -> b | None -> Resilience.Budget.unlimited
  in
  let m = Instance.n_queries evaluator.Evaluator.instance in
  let seen = Hashtbl.create 64 in
  let steps = ref [] in
  for q = 0 to m - 1 do
    if not (evaluator.Evaluator.member ~q s_star) then
      match evaluator.Evaluator.hit_constraint ~q ~current with
      | None -> ()
      | Some (a, b) -> (
          match cost.Cost.min_step ~a ~b ~bounds with
          | None -> ()
          | Some step ->
              let c = cost.Cost.eval step in
              let within_budget =
                match max_step_cost with
                | None -> true
                | Some ceiling -> c <= ceiling +. 1e-12
              in
              if within_budget then begin
                let key = step_key step in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  steps := (step, c) :: !steps
                end
              end)
  done;
  let sorted =
    List.sort (fun (_, c1) (_, c2) -> Float.compare c1 c2) !steps
  in
  let capped =
    match cap with
    | None -> sorted
    | Some n -> List.filteri (fun i _ -> i < n) sorted
  in
  (* The expensive part: one full hit-count evaluation per candidate.
     Candidates are independent, so this is the fan-out the Parallel
     pool accelerates; the order-preserving map keeps the result (and
     hence every downstream index-based tie-break) identical to the
     sequential path. *)
  let evaluate (step, step_cost) =
    Resilience.Budget.step budget 1;
    let hits = evaluator.Evaluator.hit_count (Vec.add s_star step) in
    { step; step_cost; hits }
  in
  (* Budget discipline: each evaluation books a step; once the budget
     trips, remaining evaluations are skipped (hits = 0 placeholders).
     The searches re-check the budget right after [collect] and
     discard the whole list on a trip, so a partially evaluated batch
     is never acted on. *)
  match pool with
  | None ->
      List.map
        (fun ((step, step_cost) as c) ->
          if Resilience.Budget.live budget then evaluate c
          else { step; step_cost; hits = 0 })
        capped
  | Some pool ->
      let stop () = not (Resilience.Budget.live budget) in
      let on_chunk =
        match fault with
        | None -> None
        | Some _ ->
            Some (fun () -> Resilience.Fault.point fault ~site:"pool.task")
      in
      Array.to_list
        (Parallel.map_array ~stop ?on_chunk pool evaluate
           (Array.of_list capped))
