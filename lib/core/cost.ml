open Geom

type t = {
  name : string;
  dim : int;
  eval : Strategy.t -> float;
  min_step :
    a:Vec.t -> b:float -> bounds:Lp.Projection.bounds -> Strategy.t option;
}

let euclidean d =
  {
    name = "euclidean";
    dim = d;
    eval = Vec.norm;
    min_step = (fun ~a ~b ~bounds -> Lp.Projection.l2_boxed ~bounds ~a ~b ());
  }

let check_positive name w =
  Array.iter (fun x -> if x <= 0. then invalid_arg (name ^ ": weight <= 0")) w

let weighted_euclidean w =
  check_positive "Cost.weighted_euclidean" w;
  let d = Vec.dim w in
  {
    name = "weighted-euclidean";
    dim = d;
    eval =
      (fun s ->
        let acc = ref 0. in
        for j = 0 to d - 1 do
          acc := !acc +. (w.(j) *. s.(j) *. s.(j))
        done;
        sqrt !acc);
    min_step =
      (fun ~a ~b ~bounds ->
        (* Rescale coordinates by sqrt w to reduce to plain L2:
           t_j = sqrt(w_j) s_j, constraint (a_j / sqrt w_j) . t <= b. *)
        let sw = Array.map sqrt w in
        let a' = Array.mapi (fun j aj -> aj /. sw.(j)) a in
        let bounds' =
          {
            Lp.Projection.lo =
              Array.mapi (fun j x -> x *. sw.(j)) bounds.Lp.Projection.lo;
            hi = Array.mapi (fun j x -> x *. sw.(j)) bounds.Lp.Projection.hi;
          }
        in
        match Lp.Projection.l2_boxed ~bounds:bounds' ~a:a' ~b () with
        | None -> None
        | Some s' -> Some (Array.mapi (fun j x -> x /. sw.(j)) s'));
  }

let l1 d =
  {
    name = "l1";
    dim = d;
    eval = Vec.l1_norm;
    min_step = (fun ~a ~b ~bounds -> Lp.Projection.l1_boxed ~bounds ~a ~b ());
  }

let weighted_l1 w =
  check_positive "Cost.weighted_l1" w;
  let d = Vec.dim w in
  {
    name = "weighted-l1";
    dim = d;
    eval =
      (fun s ->
        let acc = ref 0. in
        for j = 0 to d - 1 do
          acc := !acc +. (w.(j) *. abs_float s.(j))
        done;
        !acc);
    min_step =
      (fun ~a ~b ~bounds ->
        (* Rescale: t_j = w_j s_j turns the cost into plain L1. *)
        let a' = Array.mapi (fun j aj -> aj /. w.(j)) a in
        let bounds' =
          {
            Lp.Projection.lo =
              Array.mapi (fun j x -> x *. w.(j)) bounds.Lp.Projection.lo;
            hi = Array.mapi (fun j x -> x *. w.(j)) bounds.Lp.Projection.hi;
          }
        in
        match Lp.Projection.l1_boxed ~bounds:bounds' ~a:a' ~b () with
        | None -> None
        | Some s' -> Some (Array.mapi (fun j x -> x /. w.(j)) s'));
  }

let linear c =
  check_positive "Cost.linear" c;
  let d = Vec.dim c in
  {
    name = "linear";
    dim = d;
    eval = (fun s -> Float.max 0. (Vec.dot c s));
    min_step =
      (fun ~a ~b ~bounds ->
        (* Cost c.s is cheapest on coordinates with the best |a_j|/c_j
           ratio; identical to weighted L1 when steps go in the helpful
           direction, which the oracle guarantees. *)
        let a' = Array.mapi (fun j aj -> aj /. c.(j)) a in
        let bounds' =
          {
            Lp.Projection.lo =
              Array.mapi (fun j x -> x *. c.(j)) bounds.Lp.Projection.lo;
            hi = Array.mapi (fun j x -> x *. c.(j)) bounds.Lp.Projection.hi;
          }
        in
        match Lp.Projection.l1_boxed ~bounds:bounds' ~a:a' ~b () with
        | None -> None
        | Some s' -> Some (Array.mapi (fun j x -> x /. c.(j)) s'));
  }

(* Coordinate-descent polish on the constraint boundary: shrink one
   coordinate while growing another so [a . s] stays put, keeping the
   move whenever the cost drops. *)
let polish ~eval ~a ~bounds s0 =
  let d = Array.length s0 in
  let s = Array.copy s0 in
  let within j x =
    Float.min bounds.Lp.Projection.hi.(j) (Float.max bounds.Lp.Projection.lo.(j) x)
  in
  let try_pair ji jk step =
    if Fp.nonzero a.(jk) then begin
      let sji = within ji (s.(ji) +. step) in
      let delta = sji -. s.(ji) in
      if Fp.nonzero delta then begin
        let sjk = within jk (s.(jk) -. (a.(ji) *. delta /. a.(jk))) in
        (* Only keep if the constraint value did not increase. *)
        let old_dot = (a.(ji) *. s.(ji)) +. (a.(jk) *. s.(jk)) in
        let new_dot = (a.(ji) *. sji) +. (a.(jk) *. sjk) in
        if new_dot <= old_dot +. 1e-12 then begin
          let old_cost = eval s in
          let keep_ji = s.(ji) and keep_jk = s.(jk) in
          s.(ji) <- sji;
          s.(jk) <- sjk;
          if eval s > old_cost -. 1e-15 then begin
            s.(ji) <- keep_ji;
            s.(jk) <- keep_jk
          end
        end
      end
    end
  in
  let scale = Float.max 1e-6 (Vec.linf_norm s0) in
  let steps = [ 0.5 *. scale; 0.1 *. scale; 0.02 *. scale ] in
  for _round = 1 to 3 do
    for ji = 0 to d - 1 do
      for jk = 0 to d - 1 do
        if ji <> jk then
          List.iter
            (fun st ->
              try_pair ji jk st;
              try_pair ji jk (-.st))
            steps
      done
    done
  done;
  s

let custom ~name ~dim eval =
  let min_step ~a ~b ~bounds =
    if not (Lp.Projection.feasible ~a ~b bounds) then None
    else begin
      let candidates =
        List.filter_map
          (fun c -> c)
          [
            Lp.Projection.l2_boxed ~bounds ~a ~b ();
            Lp.Projection.l1_boxed ~bounds ~a ~b ();
          ]
      in
      match candidates with
      | [] -> None
      | cs ->
          let polished = List.map (polish ~eval ~a ~bounds) cs in
          let all = cs @ polished in
          let best =
            List.fold_left
              (fun acc s ->
                match acc with
                | None -> Some s
                | Some best -> if eval s < eval best then Some s else acc)
              None all
          in
          best
    end
  in
  { name; dim; eval; min_step }

let scale_invariant_check t =
  let probe = Array.make t.dim 0.25 in
  let zero = Array.make t.dim 0. in
  Fp.is_zero (t.eval zero)
  && t.eval probe >= 0.
  && t.eval (Array.map (fun x -> 2. *. x) probe) >= t.eval probe
