(** Efficient Strategy Evaluation — Algorithm 2.

    Given a target object, the per-target state caches the target's
    current hit set ([TP(p_i)]). Evaluating a candidate strategy [s]
    then touches only the queries inside some affected subspace — the
    slab between an intersection involving the target and its
    post-strategy image (Equations 4–5) — and re-scores each such query
    in O(d) using the cached rank-k rival ("switch the rank of f_i and
    f_l" rather than re-evaluating the query). *)

open Geom

type state

val prepare : ?layers:(int -> int) -> Query_index.t -> target:int -> state
(** Compute the target's base memberships from the index cache, plus
    the per-query rank-k rival and threshold (so {!member_after} and
    {!hit_constraint} run in O(d) with no index walk).

    [layers] enables geometric rival pruning: it maps an object id to
    its 0-based onion/dominance layer (see [Topk.Onion.layer_of]).
    When provided {e and} the layer certificate holds — all query
    weights non-negative and every rank-k rival within its query's
    first [k+1] layers — candidate evaluation iterates only the exact
    kth-rival set instead of every cached prefix object, returning
    bit-for-bit identical counts. A failed certificate (e.g. a
    [Desc]-order instance, whose weights are negated) silently falls
    back to the unpruned path. *)

val target : state -> int

val base_hits : state -> int
(** [H(p_i)] before any improvement. *)

val member : state -> q:int -> bool
(** Base membership of the target in query [q]'s result. *)

val evaluate : state -> s:Strategy.t -> int
(** [H(p_i + s)] — Algorithm 2. [s] lives in feature space. *)

val member_after : state -> s:Strategy.t -> q:int -> bool
(** Whether the improved target hits query [q]; O(d) via the cached
    threshold rival. *)

val hit_constraint :
  state -> q:int -> current:Vec.t -> (Vec.t * float) option
(** The linear constraint [(a, b)] such that a step [s] from [current]
    (the target's current feature vector) makes the target hit query
    [q] iff [a . s <= b] (Equation 14, with a small strict-inequality
    margin). [None] when the target hits [q] unconditionally (fewer
    than k other objects). *)

val dirty_queries : state -> s:Strategy.t -> int list
(** The affected-subspace query set for [s] (exposed for tests). *)

val dirty_between :
  state -> s_from:Strategy.t -> s_to:Strategy.t -> int list
(** Queries whose result can differ between the target improved by
    [s_from] and by [s_to] — the slab between the two strategy
    positions. Incremental searches (Section 5.1) use this to keep
    per-target membership caches exact across accumulated steps. *)

val evaluations : state -> int
(** Number of [evaluate] calls so far (benchmark instrumentation). *)

val pruned : state -> bool
(** Whether this state evaluates against the pruned kth-rival set
    (the [layers] certificate held at {!prepare} time). *)

val rival_count : state -> int
(** Rivals the slab classification loop visits per evaluation: the
    distinct rank-k rivals when pruned, the full cached prefix set
    otherwise. *)
