open Geom

type group = { gid : int; prefix : int array; members : int array }

type t = {
  mutable inst : Instance.t;
  depth : int;
  mutable groups : group array;
  mutable gid_of : int array; (* query idx -> gid *)
  mutable rtree : int Rtree.t;
  mutable rivals : int array;
  mutable build_seconds : float;
  mutable hint_hits : int;
  mutable hint_misses : int;
}

type build_method = Scan | Threshold_algorithm

let nonnegative_weights inst =
  Array.for_all
    (fun (q : Topk.Query.t) ->
      Array.for_all (fun w -> w >= 0.) q.Topk.Query.weights)
    inst.Instance.queries

let compute_prefix ?ta inst depth qi =
  let w = inst.Instance.queries.(qi).Topk.Query.weights in
  match ta with
  | Some ta -> Array.of_list (Topk.Ta.top_k ta ~weights:w ~k:depth)
  | None ->
      Array.of_list (Topk.Eval.top_k inst.Instance.features ~weights:w ~k:depth)

(* Group queries whose prefixes coincide; also derive the rival set. *)
let group_prefixes prefixes =
  let m = Array.length prefixes in
  let signature = Hashtbl.create (Int.max 16 (m / 4)) in
  let by_gid : (int, int array * int list ref) Hashtbl.t = Hashtbl.create 64 in
  let gid_of = Array.make m (-1) in
  let n_groups = ref 0 in
  for qi = 0 to m - 1 do
    let key = Array.to_list prefixes.(qi) in
    match Hashtbl.find_opt signature key with
    | Some gid ->
        gid_of.(qi) <- gid;
        (match Hashtbl.find_opt by_gid gid with
        | Some (_, members) -> members := qi :: !members
        | None -> invalid_arg "Query_index.group_prefixes: stale group id")
    | None ->
        let gid = !n_groups in
        incr n_groups;
        Hashtbl.add signature key gid;
        Hashtbl.add by_gid gid (prefixes.(qi), ref [ qi ]);
        gid_of.(qi) <- gid
  done;
  let groups =
    Array.init !n_groups (fun gid ->
        match Hashtbl.find_opt by_gid gid with
        | Some (prefix, members) ->
            { gid; prefix; members = Array.of_list (List.rev !members) }
        | None -> invalid_arg "Query_index.group_prefixes: stale group id")
  in
  (groups, gid_of)

let rival_set groups =
  let set = Hashtbl.create 256 in
  Array.iter
    (fun g -> Array.iter (fun id -> Hashtbl.replace set id ()) g.prefix)
    groups;
  Hashtbl.fold (fun id () acc -> id :: acc) set []
  |> List.sort Int.compare |> Array.of_list

let build_rtree inst =
  let m = Instance.n_queries inst in
  let dim = Instance.dim inst in
  let entries =
    List.init m (fun qi ->
        (Box.of_point inst.Instance.queries.(qi).Topk.Query.weights, qi))
  in
  Rtree.bulk_load ~dim entries

let refresh t prefixes =
  let groups, gid_of = group_prefixes prefixes in
  t.groups <- groups;
  t.gid_of <- gid_of;
  t.rivals <- rival_set groups;
  t.rtree <- build_rtree t.inst

let build ?(depth_slack = 0) ?(method_ = Scan) ?pool inst =
  let t0 = Unix.gettimeofday () in
  let m = Instance.n_queries inst in
  let depth =
    Int.min (Instance.n_objects inst) (Instance.max_k inst + 1 + depth_slack)
  in
  let ta =
    match method_ with
    | Scan -> None
    | Threshold_algorithm ->
        if not (nonnegative_weights inst) then
          invalid_arg
            "Query_index.build: the TA build method needs non-negative \
             query weights";
        Some (Topk.Ta.build inst.Instance.features)
  in
  (* Each query's top-[depth] prefix is independent of every other
     query's, and both build methods only read frozen structures (the
     Instance feature array; TA's sorted per-dimension lists), so the
     prefix computation shards across domains with no coordination. *)
  let prefixes =
    match pool with
    | None -> Array.init m (compute_prefix ?ta inst depth)
    | Some pool ->
        let out = Array.make m [||] in
        Parallel.parallel_for pool ~lo:0 ~hi:m (fun qi ->
            (* each query writes its own slot *)
            out.(qi) <- compute_prefix ?ta inst depth qi);
        out
  in
  let groups, gid_of = group_prefixes prefixes in
  let t =
    {
      inst;
      depth;
      groups;
      gid_of;
      rtree = build_rtree inst;
      rivals = rival_set groups;
      build_seconds = 0.;
      hint_hits = 0;
      hint_misses = 0;
    }
  in
  t.build_seconds <- Unix.gettimeofday () -. t0;
  Log.info (fun m ->
      m "index built: %d queries, %d groups, depth %d, %.3fs"
        (Instance.n_queries inst)
        (Array.length t.groups) depth t.build_seconds);
  t

let instance t = t.inst
let depth t = t.depth
let groups t = t.groups
let group_of t qi = t.groups.(t.gid_of.(qi))
let n_groups t = Array.length t.groups
let rtree t = t.rtree
let candidate_rivals t = t.rivals
let build_seconds t = t.build_seconds
let hint_stats t = (t.hint_hits, t.hint_misses)

let size_words t =
  let dim = Instance.dim t.inst in
  let rtree_words = Rtree.node_count t.rtree * ((2 * dim) + 2) in
  let group_words =
    Array.fold_left
      (fun acc g -> acc + Array.length g.prefix + Array.length g.members)
      0 t.groups
  in
  rtree_words + group_words + Array.length t.gid_of + Array.length t.rivals

let kth_other t ~q ~target =
  let g = group_of t q in
  let k = t.inst.Instance.queries.(q).Topk.Query.k in
  let rec walk i remaining =
    if i >= Array.length g.prefix then None
    else begin
      let id = g.prefix.(i) in
      if id = target then walk (i + 1) remaining
      else if remaining = 1 then Some id
      else walk (i + 1) (remaining - 1)
    end
  in
  walk 0 k

let member t ~q id =
  let g = group_of t q in
  let k = t.inst.Instance.queries.(q).Topk.Query.k in
  let rec scan i =
    if i >= Int.min k (Array.length g.prefix) then false
    else g.prefix.(i) = id || scan (i + 1)
  in
  scan 0

let slab_queries t ~normal_before ~normal_after f =
  let inst = t.inst in
  (* [box_min_max_n] ranges the bare normals directly — the previous
     code constructed two offset-0 [Hyperplane.t] per R-tree node
     visited, which dominated the slab search's allocation profile. *)
  let sign_flip_possible box =
    let bmin, bmax =
      Hyperplane.box_min_max_n ~normal:normal_before ~lo:box.Box.lo
        ~hi:box.Box.hi
    in
    let amin, amax =
      Hyperplane.box_min_max_n ~normal:normal_after ~lo:box.Box.lo
        ~hi:box.Box.hi
    in
    let down = bmax >= 0. && amin < 0. in
    let up = bmin < 0. && amax >= 0. in
    down || up
  in
  let entry_flips _box qi =
    let w = inst.Instance.queries.(qi).Topk.Query.weights in
    let before = Vec.dot normal_before w >= 0. in
    let after = Vec.dot normal_after w >= 0. in
    if before <> after then f qi
  in
  if Vec.is_zero ~eps:0. normal_before || Vec.is_zero ~eps:0. normal_after then
    Array.iteri
      (fun qi (q : Topk.Query.t) ->
        let before = Vec.dot normal_before q.Topk.Query.weights >= 0. in
        let after = Vec.dot normal_after q.Topk.Query.weights >= 0. in
        if before <> after then f qi)
      inst.Instance.queries
  else
    Rtree.search_pred t.rtree ~node_pred:sign_flip_possible
      ~entry_pred:(fun _ -> true)
      ~f:entry_flips

(* --- Section 4.3: data updating ------------------------------------- *)

let better (s1, i1) (s2, i2) = s1 < s2 || (s1 = s2 && i1 < i2)

(* Verify that a candidate prefix (borrowed from a kNN neighbour's
   subdomain) is the true top-[depth] prefix for weights [w]: it must be
   internally sorted and no outside object may beat its last entry. *)
let verify_prefix inst ~w prefix =
  let n = Instance.n_objects inst in
  let depth = Array.length prefix in
  if depth = 0 then false
  else begin
    let score id = Vec.dot w inst.Instance.features.(id) in
    let sorted = ref true in
    for i = 0 to depth - 2 do
      if
        not
          (better
             (score prefix.(i), prefix.(i))
             (score prefix.(i + 1), prefix.(i + 1)))
      then sorted := false
    done;
    if not !sorted then false
    else begin
      let in_prefix = Hashtbl.create depth in
      Array.iter (fun id -> Hashtbl.replace in_prefix id ()) prefix;
      let last = prefix.(depth - 1) in
      let last_entry = (score last, last) in
      let ok = ref true in
      (try
         for id = 0 to n - 1 do
           if not (Hashtbl.mem in_prefix id) then
             if better (score id, id) last_entry then begin
               ok := false;
               raise Exit
             end
         done
       with Exit -> ());
      !ok
    end
  end

let current_prefixes t =
  Array.init (Array.length t.gid_of) (fun qi -> (group_of t qi).prefix)

let add_query t (q : Topk.Query.t) =
  if q.Topk.Query.k + 1 > t.depth then
    invalid_arg
      "Query_index.add_query: k exceeds the index depth (rebuild with \
       depth_slack)";
  let inst' = Instance.add_query t.inst q in
  let m = Instance.n_queries inst' in
  let qi = m - 1 in
  let w = inst'.Instance.queries.(qi).Topk.Query.weights in
  (* kNN hint: try the nearest existing query's subdomain first. *)
  let hint =
    match Rtree.nearest t.rtree w 1 with
    | [ (_, _, neighbour) ] -> Some (group_of t neighbour).prefix
    | _ -> None
  in
  let prefix =
    match hint with
    | Some candidate when verify_prefix inst' ~w candidate ->
        t.hint_hits <- t.hint_hits + 1;
        candidate
    | Some _ | None ->
        t.hint_misses <- t.hint_misses + 1;
        Array.of_list
          (Topk.Eval.top_k inst'.Instance.features ~weights:w ~k:t.depth)
  in
  let prefixes = Array.append (current_prefixes t) [| prefix |] in
  t.inst <- inst';
  refresh t prefixes;
  qi

let remove_query t qi =
  let prefixes = current_prefixes t in
  let m = Array.length prefixes in
  if qi < 0 || qi >= m then invalid_arg "Query_index.remove_query: bad index";
  let prefixes' =
    Array.init (m - 1) (fun j -> if j < qi then prefixes.(j) else prefixes.(j + 1))
  in
  t.inst <- Instance.remove_query t.inst qi;
  refresh t prefixes'

let add_object t raw_attrs =
  let inst' = Instance.add_object t.inst raw_attrs in
  let id = Instance.n_objects inst' - 1 in
  let feat = inst'.Instance.features.(id) in
  let prefixes = current_prefixes t in
  (* The new object can only push into prefixes it beats the tail of. *)
  let updated =
    Array.mapi
      (fun qi prefix ->
        let w = inst'.Instance.queries.(qi).Topk.Query.weights in
        let s_new = Vec.dot w feat in
        let depth = Array.length prefix in
        let score i = Vec.dot w inst'.Instance.features.(prefix.(i)) in
        if
          depth > 0
          && not (better (s_new, id) (score (depth - 1), prefix.(depth - 1)))
          && depth >= t.depth
        then prefix
        else begin
          (* Insert in sorted position; drop overflow beyond depth. *)
          let inserted = ref false in
          let out = ref [] in
          Array.iteri
            (fun i pid ->
              if (not !inserted) && better (s_new, id) (score i, pid) then begin
                out := pid :: id :: !out;
                inserted := true
              end
              else out := pid :: !out)
            prefix;
          if not !inserted then out := id :: !out;
          let full = List.rev !out in
          Array.of_list (List.filteri (fun i _ -> i < t.depth) full)
        end)
      prefixes
  in
  t.inst <- inst';
  refresh t updated;
  id

(* --- persistence ------------------------------------------------------ *)

(* A snapshot stores only plain data (no closures): the raw attributes,
   the feature images, the effective (minimizing) query weights, and the
   cached prefixes. Loading reconstructs the R-tree and groups. The
   utility's feature map is NOT stored — the loaded instance treats the
   saved feature vectors as its objects (exact for linear utilities;
   for feature-mapped ones the loaded index works in feature space,
   which is where all IQ processing happens anyway). *)
type snapshot = {
  s_raw : Vec.t array;
  s_features : Vec.t array;
  s_queries : (float array * int * int) array; (* weights, k, id *)
  s_prefixes : int array array;
  s_depth : int;
}

let snapshot_magic = "iq-index-v1"

let save t path =
  let inst = t.inst in
  let snap =
    {
      s_raw = inst.Instance.raw;
      s_features = inst.Instance.features;
      s_queries =
        Array.map
          (fun (q : Topk.Query.t) ->
            (q.Topk.Query.weights, q.Topk.Query.k, q.Topk.Query.id))
          inst.Instance.queries;
      s_prefixes = current_prefixes t;
      s_depth = t.depth;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* A plain-text magic line guards the unmarshal: reading a
         marshalled value at the wrong type is memory-unsafe, so the
         check must happen before Marshal runs. *)
      output_string oc snapshot_magic;
      output_char oc '\n';
      Marshal.to_channel oc snap [])

let load path =
  let ic = open_in_bin path in
  let snap =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let magic =
          try input_line ic with End_of_file -> ""
        in
        if magic <> snapshot_magic then
          invalid_arg "Query_index.load: not an index snapshot";
        (Marshal.from_channel ic : snapshot))
  in
  let queries =
    Array.to_list snap.s_queries
    |> List.map (fun (w, k, id) -> Topk.Query.make ~id ~k w)
  in
  (* The loaded instance's objects are the saved feature vectors; the
     original raw attributes are kept in the snapshot for forward
     compatibility but not re-attached (the utility closure is gone). *)
  ignore snap.s_raw;
  let inst = Instance.create ~data:snap.s_features ~queries () in
  let groups, gid_of = group_prefixes snap.s_prefixes in
  let t =
    {
      inst;
      depth = snap.s_depth;
      groups;
      gid_of;
      rtree = build_rtree inst;
      rivals = rival_set groups;
      build_seconds = 0.;
      hint_hits = 0;
      hint_misses = 0;
    }
  in
  t

let prefix_filter t =
  let filter = Bloom.create ~expected:(Int.max 1 (Array.length t.rivals)) () in
  Array.iter (fun id -> Bloom.add filter id) t.rivals;
  filter

let update_object t id raw_attrs =
  let filter = prefix_filter t in
  let inst' = Instance.update_object t.inst id raw_attrs in
  let feat = inst'.Instance.features.(id) in
  let might_contain = Bloom.mem filter id in
  let prefixes = current_prefixes t in
  let updated =
    Array.mapi
      (fun qi prefix ->
        let w = inst'.Instance.queries.(qi).Topk.Query.weights in
        let depth = Array.length prefix in
        let contains =
          might_contain && Array.exists (fun p -> p = id) prefix
        in
        let cuts =
          (not contains) && depth > 0
          &&
          let s_new = Vec.dot w feat in
          let last = prefix.(depth - 1) in
          let s_last = Vec.dot w inst'.Instance.features.(last) in
          better (s_new, id) (s_last, last)
        in
        if contains || cuts || depth < t.depth then
          (* The moved object bounds (or now cuts into) this query's
             subdomain: recompute its prefix against the new features. *)
          Array.of_list
            (Topk.Eval.top_k inst'.Instance.features ~weights:w ~k:t.depth)
        else prefix)
      prefixes
  in
  t.inst <- inst';
  refresh t updated

let remove_object t id =
  let filter = prefix_filter t in
  let inst' = Instance.remove_object t.inst id in
  let prefixes = current_prefixes t in
  let might_contain = Bloom.mem filter id in
  let remap pid = if pid > id then pid - 1 else pid in
  let updated =
    Array.mapi
      (fun qi prefix ->
        let contains = might_contain && Array.exists (fun p -> p = id) prefix in
        if contains then begin
          (* This query's subdomain loses a boundary object: recompute. *)
          let w = inst'.Instance.queries.(qi).Topk.Query.weights in
          Array.of_list
            (Topk.Eval.top_k inst'.Instance.features ~weights:w ~k:t.depth)
        end
        else Array.map remap prefix)
      prefixes
  in
  t.inst <- inst';
  refresh t updated

(* --- copy-on-write variants ----------------------------------------- *)

(* The in-place mutators above never patch a shared array: each one
   computes a fresh [inst'] (Instance's update paths are functional)
   and a fresh prefix table, then wholesale-assigns the derived fields
   via [refresh]. Running them against a shallow copy of the record
   therefore leaves the original index fully intact — unchanged prefix
   arrays and the old instance's slabs are shared structurally, and a
   reader holding the original never observes a half-applied update. *)
let shallow_copy t = { t with inst = t.inst }

let with_query_added t q =
  let t' = shallow_copy t in
  let qi = add_query t' q in
  (t', qi)

let with_query_removed t qi =
  let t' = shallow_copy t in
  remove_query t' qi;
  t'

let with_object_added t raw_attrs =
  let t' = shallow_copy t in
  let id = add_object t' raw_attrs in
  (t', id)

let with_object_updated t id raw_attrs =
  let t' = shallow_copy t in
  update_object t' id raw_attrs;
  t'

let with_object_removed t id =
  let t' = shallow_copy t in
  remove_object t' id;
  t'
