(** The Efficient-IQ query index (Section 4.1, scalable path).

    Queries are grouped by their {e ranking signature} — the ordered
    prefix of the best [depth] object ids — which is the subdomain
    equivalence relation restricted to the intersections that can ever
    affect a top-k result (see DESIGN.md). Each group caches that
    ordered prefix once ("at most one query needs to be evaluated per
    subdomain"); an R-tree over the query points supports the
    affected-subspace slab searches of Equations 4–5. *)

open Geom

type group = {
  gid : int;
  prefix : int array;  (** ordered best-object ids, shared by the group *)
  members : int array;  (** query indices *)
}

type t

type build_method =
  | Scan  (** bounded-selection scan per query (default) *)
  | Threshold_algorithm
      (** Fagin TA over per-dimension sorted lists; requires
          non-negative query weights *)

val build :
  ?depth_slack:int -> ?method_:build_method -> ?pool:Parallel.pool ->
  Instance.t -> t
(** Prefix depth is [max_k + 1 + depth_slack] (slack defaults to 0; a
    positive slack keeps signatures valid under deeper perturbations).

    [pool] shards the per-query prefix computation across a
    {!Parallel} Domain pool. {b Safe-sharing invariant:} this relies
    on both build methods being read-only over frozen data — the Scan
    path reads only the immutable [Instance] feature array, and the TA
    path additionally reads TA's per-dimension sorted lists, which are
    built once before the fan-out and never mutated by queries. Each
    domain writes only its own queries' prefix slots, and the grouping
    /R-tree phases that follow run sequentially on the caller. The
    built index is byte-identical for every pool size.
    @raise Invalid_argument when [Threshold_algorithm] is requested on a
    workload with negative weights. *)

val instance : t -> Instance.t

val depth : t -> int

val groups : t -> group array

val group_of : t -> int -> group
(** Group containing a query index. *)

val n_groups : t -> int

val rtree : t -> int Rtree.t
(** Query-point R-tree; payloads are query indices. *)

val candidate_rivals : t -> int array
(** Object ids appearing in at least one cached prefix — the only
    possible swap partners whose intersections with a target can change
    any query's result (the Fact-2 elimination of Section 4.1). *)

val build_seconds : t -> float

val size_words : t -> int
(** Approximate index footprint in machine words (R-tree nodes, group
    prefixes, membership arrays). *)

val kth_other : t -> q:int -> target:int -> int option
(** The object at rank [k_q] once [target] is removed — Equation 6's
    threshold object [p_{j,k}]. [None] when fewer than [k] others exist
    in the prefix (implies the target always hits). *)

val member : t -> q:int -> int -> bool
(** Whether object [id] is in query [q]'s top-k (from the cache). *)

val slab_queries :
  t -> normal_before:Vec.t -> normal_after:Vec.t -> (int -> unit) -> unit
(** Visit every query index whose sign under [normal_before . q]
    differs from its sign under [normal_after . q] — the affected
    subspace between an intersection and its post-strategy image.
    Points on a hyperplane count as above (Section 4.1). Uses R-tree
    pruning via per-node interval bounds. *)

(** {2 Data updating — Section 4.3}

    All update operations maintain the index in place. Evaluator/ESE
    states prepared before an update are stale afterwards; prepare
    fresh ones. *)

val add_query : t -> Topk.Query.t -> int
(** Insert a top-k query, returning its index. The nearest existing
    query's subdomain is tried first (the paper's kNN shortcut) and
    verified against its boundaries; only on mismatch is the prefix
    recomputed from scratch.
    @raise Invalid_argument when the query's [k] exceeds the index
    depth (rebuild with [depth_slack] instead). *)

val remove_query : t -> int -> unit
(** Remove the query at an index; later query indices shift down. *)

val add_object : t -> Vec.t -> int
(** Insert an object (raw attributes), returning its id. Subdomain
    boundaries move only where the new function cuts into a cached
    prefix; those prefixes are updated by sorted insertion, everything
    else is untouched. *)

val remove_object : t -> int -> unit
(** Remove an object id (later ids shift down). The Bloom filter over
    prefix membership ({!prefix_filter}) short-circuits the search for
    affected subdomains; only those recompute their prefixes. *)

val prefix_filter : t -> int Bloom.t
(** Bloom filter over object ids that bound some populated subdomain
    (appear in a cached prefix) — Section 4.3's structure. *)

(** {2 Copy-on-write variants}

    Functional counterparts of the update operations above: the input
    index is left fully intact and a new index is returned, so a reader
    holding the original can keep searching against a consistent
    snapshot while a writer builds the next generation. Unchanged
    prefix arrays and the instance's untouched column slabs are shared
    structurally between the two. *)

val with_query_added : t -> Topk.Query.t -> t * int
(** Functional {!add_query}: returns the new index and the inserted
    query's index. @raise Invalid_argument as {!add_query}. *)

val with_query_removed : t -> int -> t
(** Functional {!remove_query}. *)

val with_object_added : t -> Vec.t -> t * int
(** Functional {!add_object}: returns the new index and the object id. *)

val with_object_updated : t -> int -> Vec.t -> t
(** Functional in-place object update: replace object [id]'s raw
    attributes keeping its id, in a successor index. Only subdomains
    whose cached prefix contains [id] (found via the {!prefix_filter}
    Bloom filter) or that the moved object now cuts into recompute
    their prefixes; everything else is shared with the parent. *)

val with_object_removed : t -> int -> t
(** Functional {!remove_object}. *)

val hint_stats : t -> int * int
(** [(hits, misses)] of the kNN subdomain shortcut across
    {!add_query} calls. *)

(** {2 Persistence}

    Snapshots store plain data only — raw attributes, feature vectors,
    effective query weights and the cached prefixes; the utility's
    feature map (a closure) is not stored. A loaded index works in
    feature space, which is where all IQ processing happens; for linear
    utilities this is a perfect round trip. *)

val save : t -> string -> unit
(** Write a binary index snapshot. *)

val load : string -> t
(** Load a snapshot written by {!save}. The loaded instance's objects
    are the saved feature vectors (weights already in the minimizing
    convention). @raise Invalid_argument on a non-snapshot file. *)
