open Geom

type t = {
  name : string;
  instance : Instance.t;
  base_hits : int;
  hit_count : Strategy.t -> int;
  member : q:int -> Strategy.t -> bool;
  hit_constraint : q:int -> current:Vec.t -> (Vec.t * float) option;
  evaluations : unit -> int;
}

let of_state index state =
  {
    name = "efficient-iq";
    instance = Query_index.instance index;
    base_hits = Ese.base_hits state;
    hit_count = (fun s -> Ese.evaluate state ~s);
    member = (fun ~q s -> Ese.member_after state ~s ~q);
    hit_constraint = (fun ~q ~current -> Ese.hit_constraint state ~q ~current);
    evaluations = (fun () -> Ese.evaluations state);
  }

let ese index ~target = of_state index (Ese.prepare index ~target)

let better (s1, i1) (s2, i2) = s1 < s2 || (s1 = s2 && i1 < i2)

(* Per-query hit threshold (Equation 6). It depends only on the OTHER
   objects, which never move during a search on [target], so both
   scan-based evaluators memoize it. *)
let threshold_cache inst ~target =
  let m = Instance.n_queries inst in
  let cache = Array.make m `Unknown in
  fun q ->
    match cache.(q) with
    | `Known v -> v
    | `Unknown ->
        let w = inst.Instance.queries.(q).Topk.Query.weights in
        let k = inst.Instance.queries.(q).Topk.Query.k in
        let v =
          Topk.Eval.kth_score_excluding inst.Instance.features ~weights:w ~k
            ~excl:target
        in
        cache.(q) <- `Known v;
        v

let scan_member inst threshold ~target ~q v =
  let w = inst.Instance.queries.(q).Topk.Query.weights in
  match threshold q with
  | None -> true
  | Some (kth, thr) -> better (Vec.dot w v, target) (thr, kth)

let cached_constraint inst threshold ~q ~current =
  match threshold q with
  | None -> None
  | Some (_, thr) ->
      let w = inst.Instance.queries.(q).Topk.Query.weights in
      let margin = 1e-9 *. (1. +. abs_float thr) in
      Some (w, thr -. Vec.dot w current -. margin)

(* Contiguous query-range shards for a pool fan-out: one deterministic
   partition per (shards, m), so a given query index is always scanned
   by the same shard — the lazily-filled threshold cache therefore has
   exactly one writer per slot even on the first (cache-cold) parallel
   evaluation. *)
let shard_ranges ~shards m =
  let shards = Int.max 1 (Int.min shards m) in
  let per = (m + shards - 1) / shards in
  Array.init shards (fun i -> (i * per, Int.min m ((i + 1) * per)))

let naive ?pool inst ~target =
  let count = Atomic.make 0 in
  let m = Instance.n_queries inst in
  let threshold = threshold_cache inst ~target in
  (* The range scan reads query weights out of the instance's SoA slab:
     one contiguous stride per query instead of a boxed-vector chase.
     The inlined dot matches [Vec.dot w v]'s accumulation exactly. *)
  let d = Instance.dim inst in
  let wdata = Flat.data inst.Instance.qflat in
  let count_range v (lo, hi) =
    let acc = ref 0 in
    for q = lo to hi - 1 do
      match threshold q with
      | None -> incr acc
      | Some (kth, thr) ->
          let woff = q * d in
          let s = ref 0. in
          for j = 0 to d - 1 do
            s := !s +. (wdata.(woff + j) *. v.(j))
          done;
          if better (!s, target) (thr, kth) then incr acc
    done;
    !acc
  in
  let hit_count s =
    Atomic.incr count;
    let v = Instance.improved inst ~target ~s in
    match pool with
    | None -> count_range v (0, m)
    | Some pool ->
        let shards = shard_ranges ~shards:(Parallel.domains pool * 4) m in
        Parallel.map_array pool (count_range v) shards
        |> Array.fold_left ( + ) 0
  in
  let member ~q s =
    scan_member inst threshold ~target ~q (Instance.improved inst ~target ~s)
  in
  {
    name = "naive";
    instance = inst;
    base_hits = hit_count (Strategy.zero (Instance.dim inst));
    hit_count;
    member;
    hit_constraint = cached_constraint inst threshold;
    evaluations = (fun () -> Atomic.get count);
  }

let rta ?pool inst ~target =
  let count = Atomic.make 0 in
  let queries = Array.to_list inst.Instance.queries in
  let threshold = threshold_cache inst ~target in
  (* Query shards for the pool path, split once up front. RTA decides
     each query exactly (the shared-buffer pruning only skips
     known-misses), so per-shard hit counts sum to the sequential
     count; only the evaluated/pruned balance shifts. *)
  let query_shards =
    match pool with
    | None -> [||]
    | Some pool ->
        let m = Instance.n_queries inst in
        Array.map
          (fun (lo, hi) ->
            List.filteri (fun qi _ -> qi >= lo && qi < hi) queries)
          (shard_ranges ~shards:(Parallel.domains pool * 2) m)
  in
  let hit_count s =
    Atomic.incr count;
    let v = Instance.improved inst ~target ~s in
    let inst' = Instance.with_feature inst ~target v in
    match pool with
    | None -> Topk.Rta.hit_count ~data:inst'.Instance.features ~queries target
    | Some pool ->
        Parallel.map_array pool
          (fun qs ->
            Topk.Rta.hit_count ~data:inst'.Instance.features ~queries:qs target)
          query_shards
        |> Array.fold_left ( + ) 0
  in
  let member ~q s =
    scan_member inst threshold ~target ~q (Instance.improved inst ~target ~s)
  in
  {
    name = "rta-iq";
    instance = inst;
    base_hits = hit_count (Strategy.zero (Instance.dim inst));
    hit_count;
    member;
    hit_constraint = cached_constraint inst threshold;
    evaluations = (fun () -> Atomic.get count);
  }
