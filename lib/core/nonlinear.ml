open Geom

type monomial = { attr : int; degree : int }
type monomial_map = monomial array

let monomial_utility ~dim_in map =
  Array.iter
    (fun m ->
      if m.attr < 0 || m.attr >= dim_in then
        invalid_arg "Nonlinear.monomial_utility: attribute out of range";
      if m.degree <= 0 then
        invalid_arg "Nonlinear.monomial_utility: non-positive degree")
    map;
  Topk.Utility.polynomial ~dim_in
    ~terms:(Array.to_list (Array.map (fun m -> [ (m.attr, m.degree) ]) map))

let nth_root v degree =
  if degree = 1 then Some v
  else if degree mod 2 = 1 then
    (* Odd roots exist for negatives. *)
    let mag = abs_float v ** (1. /. float_of_int degree) in
    Some (if v < 0. then -.mag else mag)
  else if v < 0. then None
  else Some (v ** (1. /. float_of_int degree))

let invert_strategy map ~raw ~s_feature =
  let d_raw = Vec.dim raw in
  if Array.length map <> Vec.dim s_feature then
    invalid_arg "Nonlinear.invert_strategy: arity mismatch";
  let adjustments = Array.make d_raw nan in
  let ok = ref true in
  Array.iteri
    (fun j m ->
      if !ok then begin
        let x = raw.(m.attr) in
        let old_feature = x ** float_of_int m.degree in
        let new_feature = old_feature +. s_feature.(j) in
        match nth_root new_feature m.degree with
        | None -> ok := false
        | Some x' ->
            let adj = x' -. x in
            if Float.is_nan adjustments.(m.attr) then
              adjustments.(m.attr) <- adj
            else if abs_float (adjustments.(m.attr) -. adj) > 1e-6 then
              ok := false
      end)
    map;
  if not !ok then None
  else
    Some
      (Array.map (fun a -> if Float.is_nan a then 0. else a) adjustments)

let generic = function
  | [] -> invalid_arg "Nonlinear.generic: empty family list"
  | f :: fs -> List.fold_left Topk.Utility.concat f fs

let embed_query ~families ~family (q : Topk.Query.t) =
  let n = List.length families in
  if family < 0 || family >= n then
    invalid_arg "Nonlinear.embed_query: family index out of range";
  let fam =
    match List.nth_opt families family with
    | Some f -> f
    | None -> invalid_arg "Nonlinear.embed_query: family index out of range"
  in
  if Vec.dim q.Topk.Query.weights <> fam.Topk.Utility.dim_out then
    invalid_arg "Nonlinear.embed_query: query weight arity mismatch";
  let before =
    List.filteri (fun i _ -> i < family) families
    |> List.fold_left (fun acc f -> acc + f.Topk.Utility.dim_out) 0
  in
  let total =
    List.fold_left (fun acc f -> acc + f.Topk.Utility.dim_out) 0 families
  in
  let w = Array.make total 0. in
  Array.blit q.Topk.Query.weights 0 w before (Vec.dim q.Topk.Query.weights);
  { q with Topk.Query.weights = w }
