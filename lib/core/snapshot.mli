(** An immutable per-generation state bundle — the unit of MVCC in the
    serving layer.

    A snapshot owns everything a reader needs to answer improvement
    queries against one generation of the dataset: the frozen
    {!Query_index} (whose {!Instance} and flat column slabs it shares
    structurally with neighbouring generations), the lazily-built
    dominance-layer onion for ESE pruning, and a per-target evaluator
    cache. Writers never patch a published snapshot — {!Iq.Engine}
    builds the next generation through the functional
    [Query_index.with_*] paths and publishes it atomically, so a reader
    holding a snapshot can keep searching it unsynchronised while any
    number of mutations land.

    The two mutable members (the onion and the evaluator cache) are
    {e caches of pure functions of the frozen index}: building them
    late never changes an answer, only its cost. Both are guarded by
    the snapshot's own lock; the engine is the only caller of the
    [locked]/[find_entry]/[set_entry]/[layers] group below, which
    exists so the prepare machinery (backend chains, failover,
    accounting) can stay in [Engine] without re-exposing the cache as
    public mutable state. *)

(** A cached per-target evaluator. Unlike the pre-MVCC engine cache
    there is no generation stamp: an entry lives in exactly one
    snapshot and is valid for that snapshot's whole lifetime. [e_pos]
    records which link of the backend fallback chain served it. *)
type entry = {
  e_eval : Evaluator.t;
  e_state : Ese.state option;
  e_pos : int;
  e_bname : string;
}

type t

val root : ?generation:int -> prune:bool -> Query_index.t -> t
(** A root snapshot over a freshly built (or adopted) index.
    [generation] defaults to 0; recovery passes the generation the
    persisted checkpoint was taken at, so a replayed engine counts on
    from where the crashed one stopped. *)

val next : t -> Query_index.t -> t
(** The successor generation over a functionally-updated index: the
    generation counter advances by one and the onion/evaluator caches
    start empty (mutations move objects, so neither survives). *)

val generation : t -> int

val index : t -> Query_index.t

val instance : t -> Instance.t

val pruning : t -> bool

val size_words : t -> int
(** Approximate footprint in machine words of state {e owned} by this
    generation (the index; shared instance slabs are counted once per
    snapshot holding them — an upper bound for the pinned-memory
    ceiling the MVCC bench gates on). *)

(** {2 Engine-internal cache protocol}

    Callers outside [Engine] should treat a snapshot as opaque. *)

val locked : t -> (unit -> 'a) -> 'a
(** Run under the snapshot's cache lock. Prepares serialise per
    snapshot (as they did per engine before MVCC); searches on already
    prepared entries run outside the lock. *)

val find_entry : t -> int -> entry option
(** Cached evaluator for a target. Call under {!locked}. *)

val set_entry : t -> int -> entry -> unit
(** Install a target's evaluator. Call under {!locked}. *)

val layers : t -> (int -> int) option
(** The dominance-layer map for ESE pruning, [None] when pruning is
    off. Builds the onion on first use — call under {!locked}. *)

val onion_layers : t -> int option
(** [Some layer_count] once {!layers} has built the onion. *)

val eval_total : t -> int
(** Sum of the cached evaluators' evaluation counters (takes the
    lock). The engine folds this into its process-total accounting
    when the snapshot is retired. *)
