open Geom

type status = [ `Complete | `Degraded of Resilience.Budget.trip ]

type outcome = {
  strategy : Strategy.t;
  total_cost : float;
  incremental_cost : float;
  hits_before : int;
  hits_after : int;
  iterations : int;
  evaluations : int;
  status : status;
}

let ratio (c : Candidates.t) =
  if c.Candidates.hits <= 0 then infinity
  else c.Candidates.step_cost /. float_of_int c.Candidates.hits

(* Same deterministic argmin as Min_cost: ties keep the lowest
   candidate index, and Candidates.collect preserves order under a
   Parallel pool, so parallel and sequential searches accumulate the
   same strategy. *)
let best_by score = function
  | [] -> invalid_arg "Max_hit.best_by: no candidates"
  | c :: cs ->
      List.fold_left (fun acc c -> if score c < score acc then c else acc) c cs

let search ?limits ?max_iterations ?candidate_cap ?pool ?budget ?fault
    ~(evaluator : Evaluator.t) ~(cost : Cost.t) ~target ~beta () =
  let inst = evaluator.Evaluator.instance in
  let d = Instance.dim inst in
  if cost.Cost.dim <> d then invalid_arg "Max_hit.search: cost arity";
  let budget =
    match budget with Some b -> b | None -> Resilience.Budget.unlimited
  in
  let limits =
    match limits with Some l -> l | None -> Strategy.unrestricted d
  in
  let max_iterations =
    match max_iterations with Some n -> n | None -> 256
  in
  let p0 = inst.Instance.features.(target) in
  let total_bounds = Strategy.bounds_for limits ~p:p0 in
  let s_star = ref (Strategy.zero d) in
  let spent = ref 0. in
  let hits = ref evaluator.Evaluator.base_hits in
  let iterations = ref 0 in
  let stop = ref false in
  let degraded = ref None in
  while
    Option.is_none !degraded
    && (not !stop)
    && !iterations < max_iterations
    && !spent < beta
  do
    (* Same anytime discipline as Min_cost: a budget trip discards the
       in-flight iteration whole, so the returned strategy and hit
       count only reflect fully evaluated, fully applied steps. *)
    match Resilience.Budget.check budget with
    | Some trip -> degraded := Some trip
    | None -> (
        Resilience.Fault.point fault ~site:"search.iteration";
        incr iterations;
        let current = Vec.add p0 !s_star in
        let bounds = Candidates.remaining_bounds total_bounds !s_star in
        let budget_left = beta -. !spent in
        let candidates =
          Candidates.collect ?pool ~budget ?fault ~evaluator ~cost ~bounds
            ~current ~s_star:!s_star ~cap:candidate_cap
            ~max_step_cost:budget_left ()
        in
        Log.debug (fun m ->
            m "max-hit iteration %d: %d candidates, spent %.4f of %.4f"
              !iterations (List.length candidates) !spent beta);
        match Resilience.Budget.check budget with
        | Some trip -> degraded := Some trip
        | None -> (
            match candidates with
            | [] -> stop := true
            | cs -> (
                let best = best_by ratio cs in
                if !spent +. best.Candidates.step_cost <= beta then begin
                  s_star := Vec.add !s_star best.Candidates.step;
                  spent := !spent +. best.Candidates.step_cost;
                  hits := best.Candidates.hits
                end
                else begin
                  (* Final fill: cheapest-first, apply whatever still
                     fits. *)
                  let by_cost =
                    List.sort
                      (fun (a : Candidates.t) b ->
                        Float.compare a.Candidates.step_cost
                          b.Candidates.step_cost)
                      cs
                  in
                  List.iter
                    (fun (c : Candidates.t) ->
                      if !spent +. c.Candidates.step_cost <= beta then begin
                        s_star := Vec.add !s_star c.Candidates.step;
                        spent := !spent +. c.Candidates.step_cost
                      end)
                    by_cost;
                  hits := evaluator.Evaluator.hit_count !s_star;
                  stop := true
                end)))
  done;
  {
    strategy = !s_star;
    total_cost = cost.Cost.eval !s_star;
    incremental_cost = !spent;
    hits_before = evaluator.Evaluator.base_hits;
    hits_after = !hits;
    iterations = !iterations;
    evaluations = evaluator.Evaluator.evaluations ();
    status =
      (match !degraded with
      | Some trip -> `Degraded trip
      | None -> `Complete);
  }

let per_hit_cost o =
  if o.hits_after <= 0 then infinity
  else o.total_cost /. float_of_int o.hits_after
