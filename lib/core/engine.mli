(** The serving facade: one value that owns the whole IQ pipeline.

    [Engine.create] takes an {!Instance}, builds the {!Query_index},
    borrows the process-wide {!Parallel} pool, and from then on every
    improvement query, evaluation and dataset update goes through the
    engine — callers never wire [build]/[prepare]/[search] by hand (and
    nothing outside [lib/core] should).

    {b Generations and MVCC.} The engine's state lives in immutable
    per-generation {!Snapshot} bundles. Every mutation ({!add_query},
    {!add_object}, {!update_object}, …) builds the {e next} bundle
    through the functional [Query_index.with_*] copy-on-write paths
    and publishes it atomically — the previous bundle is never patched
    in place, so a reader that obtained a snapshot (a serving session,
    or any search mid-flight) keeps a consistent view for as long as
    it holds it. Reads default to the current snapshot; passing
    [?snap] pins one explicitly. Evaluators are cached per snapshot
    and re-prepared transparently when a search first touches a target
    on a new generation. Only explicit {!prepared} handles can observe
    staleness: evaluating one whose generation is behind yields
    [Error (Stale_state _)] rather than a silently wrong count.

    {b Serving sessions.} The [Serve.Session] layer (library [serve])
    drives multi-client serving: {!acquire_session} admits a caller
    (bounded by [IQ_MAX_SESSIONS], waiting within the caller's budget)
    and pins the current snapshot; {!release_session} unpins it. A few
    recently retired generations stay reachable via the
    [IQ_SNAPSHOT_KEEP] ring; anything older is reclaimed by the GC
    once its last session unpins it.

    {b Errors.} Entry points validate their inputs and return typed
    [result]s instead of raising — the [invalid_arg]s of the inner
    layers remain only for wiring bugs the engine has already ruled
    out.

    {b Backends.} Evaluation is pluggable via first-class modules:
    Efficient-IQ's subdomain index ({!Ese_backend}, the default), a
    full rescan ({!Scan_backend}) and reverse-top-k ({!Rta_backend}).
    [IQ_BACKEND] selects one at {!create} time (see
    [Workload.Config.backend]).

    {b Resilience.} Every improvement query accepts an optional
    deadline or {!Resilience.Budget}; a tripped budget returns the
    best strategies from fully completed iterations as a typed
    [Deadline_exceeded]/[Cancelled] error carrying a {!partial} —
    anytime semantics, exact but possibly under-achieved, never
    silently wrong. Backends form a degradation chain
    (ese → rta → scan): injected faults ({!Resilience.Fault}, loaded
    from [IQ_FAULT]) are retried with backoff when transient and
    failed over down the chain when persistent, with a per-backend
    circuit breaker; the accounting lands in {!stats}. *)

open Geom

(* The anytime payload of a deadline/cancellation trip: the best
   strategies found in fully completed iterations. *)
type partial = {
  p_strategies : (int * Strategy.t) list;
      (** per-target accumulated strategies (singleton for the
          single-target searches) *)
  p_hits : int;
      (** the {e exact} hit (or union-hit) count of [p_strategies] —
          never an estimate *)
  p_total_cost : float;
  p_iterations : int;  (** fully completed greedy iterations *)
  p_flag : [ `Degraded ];
      (** marks the value as an anytime answer, so it cannot be
          confused with a complete outcome in downstream code *)
}

(** Typed failure taxonomy of the serving boundary. *)
module Error : sig
  type t =
    | Dim_mismatch of { expected : int; got : int }
        (** vector arity differs from the engine's space *)
    | Unknown_target of { id : int; n_objects : int }
        (** object id out of range *)
    | Unknown_query of { q : int; n_queries : int }
        (** query index out of range *)
    | Depth_exceeded of { k : int; depth : int }
        (** an added query's [k] needs a deeper prefix than the index
            keeps — rebuild with [depth_slack] *)
    | Budget_exhausted of float  (** negative Max-Hit budget *)
    | Infeasible  (** Min-Cost: [tau] hits unreachable *)
    | Stale_state of { held : int; current : int }
        (** a {!prepared} handle outlived a mutation *)
    | Unknown_backend of string  (** unrecognized [IQ_BACKEND] name *)
    | Empty_targets  (** a combinatorial call with no targets *)
    | Deadline_exceeded of { elapsed_ms : float; partial : partial option }
        (** the request's wall-clock deadline or step budget ran out;
            [partial] is the anytime answer. Also the admission-wait
            timeout of {!acquire_session} (with [partial = None]). *)
    | Cancelled of { partial : partial option }
        (** the request's cancellation token fired *)
    | Fault_spec of { spec : string; msg : string }
        (** [IQ_FAULT] didn't parse — reported rather than silently
            running a chaos experiment without its faults *)
    | Wal_corrupt of { path : string; offset : int }
        (** the durable mutation log failed its frame checks at
            [offset] — a checksum mismatch or an impossible length.
            Recovery ([Durable.Recovery]) reports it after replaying
            the intact prefix; it never surfaces as a raw exception. *)
    | Internal of string
        (** an unexpected exception escaped an internal layer; carries
            [Printexc.to_string]. Entry points catch-and-wrap rather
            than leak raw exceptions across the serving boundary. *)

  val to_string : t -> string

  val pp : Format.formatter -> t -> unit
end

(** An evaluation backend. [prepare] builds the per-target evaluator
    (and, when the backend has one, the underlying {!Ese} state so
    multi-target searches can reuse it instead of re-preparing).
    [layers] is the snapshot's dominance-layer map (object id → 0-based
    onion layer, [Some] when pruning is enabled); backends without a
    geometric hot path ignore it. *)
module type BACKEND = sig
  val name : string

  val prepare :
    layers:(int -> int) option ->
    index:Query_index.t ->
    pool:Parallel.pool ->
    target:int ->
    Evaluator.t * Ese.state option
end

type backend = (module BACKEND)

module Ese_backend : BACKEND
(** Efficient-IQ: Algorithm 2 over the subdomain index (default). *)

module Scan_backend : BACKEND
(** Ground-truth full rescan ({!Evaluator.naive}). *)

module Rta_backend : BACKEND
(** Reverse top-k recomputation ({!Evaluator.rta}). *)

val backend_of_name : string -> (backend, Error.t) result
(** ["ese"]/["efficient-iq"], ["scan"]/["naive"], ["rta"]/["rta-iq"]
    (case-insensitive); anything else is [Unknown_backend]. *)

val default_backend : unit -> (backend, Error.t) result
(** [backend_of_name (Workload.Config.backend ())] — the [IQ_BACKEND]
    environment knob. *)

type resilience = {
  retries : int;
      (** bounded retries per backend for {e transient} injected
          faults (default [Workload.Config.retries ()], i.e.
          [IQ_RETRIES] or 2) *)
  backoff_ms : float;
      (** initial retry backoff, doubling per attempt (default 1ms) *)
  circuit_threshold : int;
      (** consecutive failures before a backend's circuit opens
          (default 3) *)
  circuit_cooldown_ms : float;
      (** how long an open circuit skips its backend before the next
          prepare half-opens it with one trial (default 100ms) *)
  fault : Resilience.Fault.t option;
      (** the injection schedule; [None] disables all fault sites *)
}
(** Failure-handling policy. {!create} without [?resilience] uses
    {!default_resilience} with the schedule parsed from [IQ_FAULT]. *)

val default_resilience : unit -> resilience

type t

val create :
  ?backend:backend ->
  ?resilience:resilience ->
  ?prune:bool ->
  ?generation:int ->
  ?depth_slack:int ->
  ?method_:Query_index.build_method ->
  ?pool:Parallel.pool ->
  Instance.t ->
  (t, Error.t) result
(** Build the index (sharded over [pool], default the shared
    {!Parallel.default} pool — engines never create pools of their
    own) and start at generation 0 ([?generation] overrides the start —
    recovery resumes the crashed engine's count; see
    [Durable.Recovery]). Without [?backend] the [IQ_BACKEND]
    environment selects one; [Error (Unknown_backend _)] when it names
    nothing. Without [?resilience], [IQ_FAULT]/[IQ_RETRIES] configure
    the policy; a malformed [IQ_FAULT] is [Error (Fault_spec _)]. The
    index build consults the [index.build] fault site (transient
    injections retry like a backend's). [prune] (default
    [Workload.Config.prune ()], the [IQ_PRUNE] knob) enables
    dominance-layer rival pruning on the ESE hot path — results are
    identical either way; see {!Ese.prepare}. *)

val of_index :
  ?backend:backend ->
  ?resilience:resilience ->
  ?prune:bool ->
  ?generation:int ->
  ?pool:Parallel.pool ->
  Query_index.t ->
  (t, Error.t) result
(** Adopt an already-built index (e.g. one loaded with
    {!Query_index.load}). The engine becomes its owner: mutating the
    index behind the engine's back voids the snapshot guarantee —
    mutate only through the engine, whose updates are copy-on-write. *)

val create_exn :
  ?backend:backend ->
  ?resilience:resilience ->
  ?prune:bool ->
  ?depth_slack:int ->
  ?method_:Query_index.build_method ->
  ?pool:Parallel.pool ->
  Instance.t ->
  t
(** {!create}, raising [Invalid_argument] on error — for programs whose
    only sensible reaction to a config error is to die (benchmarks,
    examples). *)

(** {2 Inspection} *)

val snapshot : t -> Snapshot.t
(** The currently published generation bundle. Reading it is one
    atomic load; holding it keeps that generation's state alive (and
    consistent) regardless of later mutations, but does {e not} count
    as a pinned session — see {!acquire_session}. *)

val instance : t -> Instance.t
(** The current snapshot's instance (follows mutations). *)

val index : t -> Query_index.t
(** The current snapshot's index, read-only access for diagnostics
    ([size_words], [build_seconds], …). Mutate only through the
    engine. *)

val pool : t -> Parallel.pool

val generation : t -> int
(** Bumped by every successful mutation. *)

val backend_name : t -> string

val pruning_enabled : t -> bool
(** Whether this engine hands backends a dominance-layer map (the
    [?prune] argument / [IQ_PRUNE] knob). Note a pruned engine still
    evaluates unpruned when the per-instance layer certificate fails
    (e.g. [Desc]-order workloads) — see {!Ese.prepare}. *)

val dominance_stats : t -> (int * int) option
(** [(built_generation, layer_count)] of the most recently built onion
    layer index, [None] while nothing has been prepared yet (or
    pruning is off). A [built_generation] behind {!generation} means
    the live snapshot has not built its onion yet and will on the next
    prepare — exposed so tests can observe the invalidation protocol. *)

type backend_stats = {
  b_name : string;
  b_attempts : int;  (** prepare attempts, including retries *)
  b_failures : int;  (** persistent injected failures *)
  b_retries : int;  (** transient-fault retries (prepare and eval) *)
  b_fallbacks : int;  (** times the chain moved past this backend *)
  b_circuit_open : bool;  (** currently skipped by the breaker *)
}
(** Per-backend health, reported for every chain link consulted at
    least once. *)

type stats = {
  generation : int;
  backend : string;
  prune : bool;  (** dominance-layer pruning enabled *)
  domains : int;  (** pool size *)
  n_objects : int;
  n_queries : int;
  n_groups : int;  (** index subdomain groups *)
  index_words : int;  (** approximate index footprint *)
  cached_targets : int;  (** targets with a prepared evaluator, ever *)
  stale_cached : int;  (** of those, last prepared at an older generation *)
  repreparations : int;  (** evaluators rebuilt after mutations *)
  evaluations : int;  (** candidate evaluations served, process total *)
  backends : backend_stats list;  (** in chain order *)
  deadline_trips : int;  (** searches ended by deadline/step budget *)
  cancellations : int;  (** searches ended by a cancelled token *)
  faults_injected : int;  (** total injections from the loaded schedule *)
  active_sessions : int;  (** sessions currently admitted *)
  queue_depth : int;  (** callers waiting for an admission slot *)
  admission_rejections : int;
      (** admission waits that tripped their budget *)
  pinned_snapshots : int;  (** distinct generations pinned by sessions *)
  oldest_pinned : int option;  (** oldest pinned generation, if any *)
  wal_bytes : int;
      (** durable-log bytes appended since the last checkpoint (0 when
          no journal is attached) *)
  last_checkpoint_generation : int option;
      (** generation of the most recent successful checkpoint, [None]
          before the first one *)
  replayed_records : int;
      (** log records replayed into this engine at recovery time (0
          for engines born fresh) *)
}
(** Every counter is readable concurrently with a writer: the scalars
    are [Atomic]s (or read under their own small lock) and the record
    is assembled from one published snapshot — no torn values. *)

val stats : t -> stats

(** {2 Evaluation}

    All reads below default to the current snapshot; [?snap] pins an
    explicit one (a session's, typically), whose cache they then use. *)

val evaluator : ?snap:Snapshot.t -> t -> target:int -> (Evaluator.t, Error.t) result
(** The snapshot's cached evaluator for a target — prepared on first
    use, re-prepared transparently on the first touch of a new
    generation. *)

val hits : ?snap:Snapshot.t -> t -> target:int -> (int, Error.t) result
(** [H(p_target)]: how many workload queries the target hits now. *)

val member : ?snap:Snapshot.t -> t -> target:int -> q:int -> (bool, Error.t) result
(** Whether [target] is in query [q]'s top-k. *)

val dirty_queries :
  ?snap:Snapshot.t -> t -> target:int -> s:Strategy.t -> (int list, Error.t) result
(** The queries whose membership the move [s] can affect — ESE's
    affected subdomains. Backends without ESE state conservatively
    report every query. *)

(** {3 Prepared handles}

    A {!prepared} pins a target's evaluator to the generation it was
    made at. Unlike the implicit cache — which silently re-prepares —
    a handle is a promise of {e that} snapshot: evaluating it after a
    mutation reports [Stale_state] instead of answering from data the
    caller no longer holds. (Serving sessions, which pin a whole
    snapshot instead, never go stale mid-search — their refresh is
    opt-in; see [Serve.Session].) *)

type prepared

val prepare : t -> target:int -> (prepared, Error.t) result

val prepared_target : prepared -> int

val prepared_generation : prepared -> int

val evaluate : t -> prepared -> s:Strategy.t -> (int, Error.t) result
(** [H(p_target + s)] under the handle's snapshot.
    [Error (Stale_state _)] when the engine has moved on;
    [Dim_mismatch] when [s] has the wrong arity. *)

val refresh : t -> prepared -> (prepared, Error.t) result
(** A current-generation handle for the same target (the stale-handle
    recovery path). *)

(** {2 Improvement queries}

    All four searches share the budget plumbing: an explicit [?budget]
    wins, else [?deadline_ms] starts a fresh deadline, else the
    [IQ_DEADLINE_MS] environment knob, else the request is unbounded.
    A tripped budget yields [Error (Deadline_exceeded _)] (wall-clock
    {e or} step budget) or [Error (Cancelled _)], each carrying the
    anytime {!partial}. With no budget and no fault schedule the
    results are byte-identical to an engine without resilience at any
    pool size. Each call runs against one snapshot ([?snap], default
    the current one at entry): a mutation landing mid-search never
    forces a re-prepare or mixes generations. *)

val min_cost :
  ?limits:Strategy.limits ->
  ?max_iterations:int ->
  ?candidate_cap:int ->
  ?deadline_ms:float ->
  ?budget:Resilience.Budget.t ->
  ?snap:Snapshot.t ->
  t ->
  cost:Cost.t ->
  target:int ->
  tau:int ->
  (Min_cost.outcome, Error.t) result
(** Algorithm 3 through the cached evaluator and shared pool.
    [Error Infeasible] when [tau] hits are unreachable. The outcome's
    [evaluations] counts this call only (the cache accumulates across
    calls; the engine reports the delta). *)

val max_hit :
  ?limits:Strategy.limits ->
  ?max_iterations:int ->
  ?candidate_cap:int ->
  ?deadline_ms:float ->
  ?budget:Resilience.Budget.t ->
  ?snap:Snapshot.t ->
  t ->
  cost:Cost.t ->
  target:int ->
  beta:float ->
  (Max_hit.outcome, Error.t) result
(** Algorithm 4. [Error (Budget_exhausted beta)] when [beta < 0]. *)

val min_cost_multi :
  ?limits:(int * Strategy.limits) list ->
  ?max_iterations:int ->
  ?candidate_cap:int ->
  ?deadline_ms:float ->
  ?budget:Resilience.Budget.t ->
  ?snap:Snapshot.t ->
  t ->
  costs:(int * Cost.t) list ->
  tau:int ->
  (Combinatorial.outcome, Error.t) result
(** Section 5.1 multi-target Min-Cost. Cached ESE states are passed
    through, so repeated combinatorial queries over the same targets
    prepare each state once. The multi-target candidate scan runs on
    ESE states directly (not through a backend evaluator), so there is
    no per-eval failover here: an injected fault inside the scan
    surfaces as [Error (Internal _)]. *)

val max_hit_multi :
  ?limits:(int * Strategy.limits) list ->
  ?max_iterations:int ->
  ?candidate_cap:int ->
  ?deadline_ms:float ->
  ?budget:Resilience.Budget.t ->
  ?snap:Snapshot.t ->
  t ->
  costs:(int * Cost.t) list ->
  beta:float ->
  (Combinatorial.outcome, Error.t) result

(** {2 Dataset maintenance — Section 4.3}

    Maintenance is copy-on-write: one writer at a time (they serialise
    on the engine's write lock) validates against the generation it
    extends, derives the next index through the functional
    [Query_index.with_*] paths, and publishes the successor snapshot
    atomically. Readers — including every pinned session — keep the
    generation they hold; nothing they can reach is modified. *)

val add_query : t -> Topk.Query.t -> (int, Error.t) result
(** Returns the new query's index. *)

val remove_query : t -> int -> (unit, Error.t) result
(** Later query indices shift down by one (in the new generation). *)

val add_object : t -> Vec.t -> (int, Error.t) result
(** Raw attributes; returns the new object's id. *)

val update_object : t -> int -> Vec.t -> (unit, Error.t) result
(** Replace object [id]'s raw attributes; its id is stable. *)

val remove_object : t -> int -> (unit, Error.t) result
(** Later object ids shift down by one (in the new generation). *)

(** {2 Durability — the write-ahead journal hook}

    The engine itself knows nothing about file formats; it exposes a
    {e journal}: a pair of callbacks invoked under the write lock. The
    [Durable] library supplies the standard implementation (CRC-framed
    write-ahead log + atomic checkpoints); [Durable.Store.attach] is
    the entry point application code should use. *)

(** A logical dataset mutation — exactly the information needed to
    re-execute one maintenance call. [Durable.Codec] serialises these;
    {!apply_mutation} replays them through the very same validated
    code paths the original call took. *)
type mutation =
  | M_add_object of Vec.t
  | M_update_object of { id : int; raw : Vec.t }
  | M_remove_object of int
  | M_add_query of Topk.Query.t
  | M_remove_query of int

type journal = {
  j_append : generation:int -> mutation -> int;
      (** persist one mutation, stamped with the generation it
          produces, {e before} the successor snapshot is published;
          returns the bytes written. Raising aborts the mutation —
          nothing is published, the caller sees the error — so an
          acknowledged mutation is always durable. *)
  j_checkpoint : Snapshot.t -> int;
      (** persist a full snapshot and truncate the log; returns the
          checkpoint's size in bytes. Called under the write lock. *)
  j_every : int option;
      (** automatic checkpoint cadence in mutations, [None] for
          manual-only (the [IQ_CHECKPOINT_EVERY] knob, resolved by
          [Durable.Store]) *)
}

val attach_journal :
  ?replayed_records:int ->
  ?checkpoint_generation:int ->
  ?wal_bytes:int ->
  t ->
  journal ->
  unit
(** Start journaling every subsequent mutation. The optional carry-ins
    seed the durability counters in {!stats} when attaching over a
    recovered engine (records replayed, the generation of the
    checkpoint recovery started from, bytes already in the log
    tail). *)

val detach_journal : t -> unit
(** Stop journaling (already-written files are left alone). *)

val journaled : t -> bool

val checkpoint : t -> (unit, Error.t) result
(** Force a checkpoint now: persists the current snapshot through the
    journal and resets {!stats}'s [wal_bytes]. A no-op (and [Ok ()])
    without an attached journal. *)

val apply_mutation : t -> mutation -> (unit, Error.t) result
(** Re-execute a logical mutation through its maintenance entry point
    (replay). New ids are recomputed, not trusted from the record —
    determinism of the copy-on-write paths makes them land on the same
    values the original run produced. *)

(** {2 Serving sessions — admission control and snapshot pinning}

    The raw material of [Serve.Session]; application code should use
    that library rather than these directly. *)

val acquire_session :
  ?deadline_ms:float ->
  ?budget:Resilience.Budget.t ->
  t ->
  (Snapshot.t, Error.t) result
(** Admit a serving session and pin the current snapshot. At most
    [IQ_MAX_SESSIONS] sessions are active at once; beyond that the
    caller waits (polling, 1ms) until a slot frees or its budget
    trips — the trip is returned as [Deadline_exceeded]/[Cancelled]
    with no partial and counted as an admission rejection in
    {!stats}. Budget precedence matches the searches'. *)

val release_session : t -> Snapshot.t -> unit
(** Unpin a session's snapshot and free its admission slot. Call
    exactly once per successful {!acquire_session} (sessions do this
    in their [close]). *)

val repin : t -> Snapshot.t -> Snapshot.t
(** Exchange a session's pinned snapshot for the current one (the
    opt-in refresh): pins the new generation, unpins the old, keeps
    the admission slot. Returns the snapshot now pinned (the same one
    when no mutation has landed). *)
