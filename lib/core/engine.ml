open Geom

module Error = struct
  type t =
    | Dim_mismatch of { expected : int; got : int }
    | Unknown_target of { id : int; n_objects : int }
    | Unknown_query of { q : int; n_queries : int }
    | Depth_exceeded of { k : int; depth : int }
    | Budget_exhausted of float
    | Infeasible
    | Stale_state of { held : int; current : int }
    | Unknown_backend of string
    | Empty_targets
    | Internal of string

  let to_string = function
    | Dim_mismatch { expected; got } ->
        Printf.sprintf "dimension mismatch: expected %d, got %d" expected got
    | Unknown_target { id; n_objects } ->
        Printf.sprintf "unknown target %d (instance has %d objects)" id
          n_objects
    | Unknown_query { q; n_queries } ->
        Printf.sprintf "unknown query %d (workload has %d queries)" q
          n_queries
    | Depth_exceeded { k; depth } ->
        Printf.sprintf
          "query k=%d exceeds index depth %d (rebuild with depth_slack)" k
          depth
    | Budget_exhausted beta -> Printf.sprintf "budget %g is negative" beta
    | Infeasible -> "goal unreachable: no feasible strategy"
    | Stale_state { held; current } ->
        Printf.sprintf "stale state: prepared at generation %d, engine at %d"
          held current
    | Unknown_backend name ->
        Printf.sprintf "unknown backend %S (expected ese, scan or rta)" name
    | Empty_targets -> "no targets given"
    | Internal msg -> "internal error: " ^ msg

  let pp ppf e = Format.pp_print_string ppf (to_string e)
end

let ( let* ) = Result.bind

(* Last-resort boundary conversion. The inner layers guard their
   invariants with [invalid_arg]/[assert] and the pool re-raises
   worker exceptions; the serving boundary promises typed results, so
   anything that still escapes becomes [Error (Internal _)] here
   rather than a raw exception in the caller's lap. The handler is
   deliberately total — at a serving boundary even Out_of_memory is
   better reported than leaked. *)
let guard f =
  try f () with e -> Error (Error.Internal (Printexc.to_string e))

module type BACKEND = sig
  val name : string

  val prepare :
    index:Query_index.t ->
    pool:Parallel.pool ->
    target:int ->
    Evaluator.t * Ese.state option
end

type backend = (module BACKEND)

module Ese_backend = struct
  let name = "ese"

  let prepare ~index ~pool:_ ~target =
    let state = Ese.prepare index ~target in
    (Evaluator.of_state index state, Some state)
end

module Scan_backend = struct
  let name = "scan"

  let prepare ~index ~pool ~target =
    (Evaluator.naive ~pool (Query_index.instance index) ~target, None)
end

module Rta_backend = struct
  let name = "rta"

  let prepare ~index ~pool ~target =
    (Evaluator.rta ~pool (Query_index.instance index) ~target, None)
end

let backend_of_name name =
  match String.lowercase_ascii (String.trim name) with
  | "ese" | "efficient" | "efficient-iq" -> Ok (module Ese_backend : BACKEND)
  | "scan" | "naive" -> Ok (module Scan_backend : BACKEND)
  | "rta" | "rta-iq" -> Ok (module Rta_backend : BACKEND)
  | other -> Error (Error.Unknown_backend other)

let default_backend () = backend_of_name (Workload.Config.backend ())

(* A cached per-target evaluator, pinned to the generation it was
   prepared at. The ESE state rides along (when the backend has one)
   so combinatorial searches reuse it instead of re-preparing. *)
type centry = { c_gen : int; c_eval : Evaluator.t; c_state : Ese.state option }

type t = {
  index : Query_index.t;
  pool : Parallel.pool;
  backend : backend;
  lock : Mutex.t;
  cache : (int, centry) Hashtbl.t;
  mutable gen : int;
  mutable repreps : int;
  mutable retired_evals : int;
      (* evaluation counts of cache entries already replaced, so
         [stats] stays monotonic across re-preparations *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let resolve_backend = function Some b -> Ok b | None -> default_backend ()

let of_index ?backend ?pool index =
  guard @@ fun () ->
  let* b = resolve_backend backend in
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  Ok
    {
      index;
      pool;
      backend = b;
      lock = Mutex.create ();
      cache = Hashtbl.create 16;
      gen = 0;
      repreps = 0;
      retired_evals = 0;
    }

let create ?backend ?depth_slack ?method_ ?pool inst =
  guard @@ fun () ->
  let* b = resolve_backend backend in
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let index = Query_index.build ?depth_slack ?method_ ~pool inst in
  of_index ~backend:b ~pool index

let create_exn ?backend ?depth_slack ?method_ ?pool inst =
  match create ?backend ?depth_slack ?method_ ?pool inst with
  | Ok t -> t
  | Error e -> invalid_arg ("Engine.create: " ^ Error.to_string e)

let instance t = Query_index.instance t.index

let index t = t.index

let pool t = t.pool

let generation t = t.gen

let backend_name t =
  let (module B : BACKEND) = t.backend in
  B.name

(* {2 Validation} *)

let check_target t id =
  let n = Instance.n_objects (instance t) in
  if id < 0 || id >= n then Error (Error.Unknown_target { id; n_objects = n })
  else Ok ()

let check_query t q =
  let m = Instance.n_queries (instance t) in
  if q < 0 || q >= m then Error (Error.Unknown_query { q; n_queries = m })
  else Ok ()

let check_dim ~expected ~got =
  if expected <> got then Error (Error.Dim_mismatch { expected; got })
  else Ok ()

(* {2 Evaluator cache} *)

let entry t ~target =
  with_lock t (fun () ->
      let fresh () =
        let (module B : BACKEND) = t.backend in
        let eval, state = B.prepare ~index:t.index ~pool:t.pool ~target in
        let e = { c_gen = t.gen; c_eval = eval; c_state = state } in
        Hashtbl.replace t.cache target e;
        e
      in
      match Hashtbl.find_opt t.cache target with
      | Some e when e.c_gen = t.gen -> e
      | Some stale ->
          (* Transparent re-preparation: a mutation moved the engine
             past this entry's generation. *)
          t.repreps <- t.repreps + 1;
          t.retired_evals <-
            t.retired_evals + stale.c_eval.Evaluator.evaluations ();
          fresh ()
      | None -> fresh ())

let evaluator t ~target =
  let* () = check_target t target in
  Ok (entry t ~target).c_eval

let hits t ~target =
  let* ev = evaluator t ~target in
  Ok ev.Evaluator.base_hits

let member t ~target ~q =
  let* () = check_target t target in
  let* () = check_query t q in
  let e = entry t ~target in
  match e.c_state with
  | Some state -> Ok (Ese.member state ~q)
  | None ->
      Ok (e.c_eval.Evaluator.member ~q (Strategy.zero (Instance.dim (instance t))))

let dirty_queries t ~target ~s =
  guard @@ fun () ->
  let* () = check_target t target in
  let* () = check_dim ~expected:(Instance.dim (instance t)) ~got:(Vec.dim s) in
  match (entry t ~target).c_state with
  | Some state -> Ok (Ese.dirty_queries state ~s)
  | None -> Ok (List.init (Instance.n_queries (instance t)) Fun.id)

(* {2 Prepared handles} *)

type prepared = { p_target : int; p_gen : int; p_entry : centry }

let prepare t ~target =
  let* () = check_target t target in
  let e = entry t ~target in
  Ok { p_target = target; p_gen = e.c_gen; p_entry = e }

let prepared_target p = p.p_target

let prepared_generation p = p.p_gen

let evaluate t p ~s =
  let* () =
    check_dim ~expected:(Instance.dim (instance t)) ~got:(Vec.dim s)
  in
  let current = t.gen in
  if p.p_gen <> current then
    Error (Error.Stale_state { held = p.p_gen; current })
  else Ok (p.p_entry.c_eval.Evaluator.hit_count s)

let refresh t p = prepare t ~target:p.p_target

(* {2 Improvement queries} *)

let min_cost ?limits ?max_iterations ?candidate_cap t ~cost ~target ~tau =
  guard @@ fun () ->
  let* () = check_target t target in
  let* () =
    check_dim ~expected:(Instance.dim (instance t)) ~got:cost.Cost.dim
  in
  let e = entry t ~target in
  let before = e.c_eval.Evaluator.evaluations () in
  match
    Min_cost.search ?limits ?max_iterations ?candidate_cap ~pool:t.pool
      ~evaluator:e.c_eval ~cost ~target ~tau ()
  with
  | None -> Error Error.Infeasible
  | Some o ->
      (* The cached evaluator accumulates across calls; report only
         this call's work, as a fresh evaluator would. *)
      Ok { o with Min_cost.evaluations = o.Min_cost.evaluations - before }

let max_hit ?limits ?max_iterations ?candidate_cap t ~cost ~target ~beta =
  guard @@ fun () ->
  if beta < 0. then Error (Error.Budget_exhausted beta)
  else
    let* () = check_target t target in
    let* () =
      check_dim ~expected:(Instance.dim (instance t)) ~got:cost.Cost.dim
    in
    let e = entry t ~target in
    let before = e.c_eval.Evaluator.evaluations () in
    let o =
      Max_hit.search ?limits ?max_iterations ?candidate_cap ~pool:t.pool
        ~evaluator:e.c_eval ~cost ~target ~beta ()
    in
    Ok { o with Max_hit.evaluations = o.Max_hit.evaluations - before }

let check_costs t costs =
  if costs = [] then Error Error.Empty_targets
  else
    let d = Instance.dim (instance t) in
    List.fold_left
      (fun acc (target, cost) ->
        let* () = acc in
        let* () = check_target t target in
        check_dim ~expected:d ~got:cost.Cost.dim)
      (Ok ()) costs

let cached_states t costs =
  List.filter_map
    (fun (target, _) ->
      match (entry t ~target).c_state with
      | Some state -> Some (target, state)
      | None -> None)
    costs

let min_cost_multi ?limits ?max_iterations ?candidate_cap t ~costs ~tau =
  guard @@ fun () ->
  let* () = check_costs t costs in
  let states = cached_states t costs in
  match
    Combinatorial.min_cost ?limits ?max_iterations ?candidate_cap ~states
      ~index:t.index ~costs ~tau ()
  with
  | None -> Error Error.Infeasible
  | Some o -> Ok o

let max_hit_multi ?limits ?max_iterations ?candidate_cap t ~costs ~beta =
  guard @@ fun () ->
  if beta < 0. then Error (Error.Budget_exhausted beta)
  else
    let* () = check_costs t costs in
    let states = cached_states t costs in
    Ok
      (Combinatorial.max_hit ?limits ?max_iterations ?candidate_cap ~states
         ~index:t.index ~costs ~beta ())

(* {2 Dataset maintenance} *)

let mutate t f =
  with_lock t (fun () ->
      let r = f () in
      t.gen <- t.gen + 1;
      r)

let add_query t q =
  guard @@ fun () ->
  let* () =
    check_dim ~expected:(Instance.dim (instance t))
      ~got:(Vec.dim q.Topk.Query.weights)
  in
  let depth = Query_index.depth t.index in
  if q.Topk.Query.k + 1 > depth then
    Error (Error.Depth_exceeded { k = q.Topk.Query.k; depth })
  else Ok (mutate t (fun () -> Query_index.add_query t.index q))

let remove_query t q =
  guard @@ fun () ->
  let* () = check_query t q in
  Ok (mutate t (fun () -> Query_index.remove_query t.index q))

let add_object t raw =
  guard @@ fun () ->
  let* () =
    check_dim ~expected:(Instance.dim_raw (instance t)) ~got:(Vec.dim raw)
  in
  Ok (mutate t (fun () -> Query_index.add_object t.index raw))

let update_object t id raw =
  guard @@ fun () ->
  let* () = check_target t id in
  let* () =
    check_dim ~expected:(Instance.dim_raw (instance t)) ~got:(Vec.dim raw)
  in
  Ok (mutate t (fun () -> Query_index.update_object t.index id raw))

let remove_object t id =
  guard @@ fun () ->
  let* () = check_target t id in
  Ok (mutate t (fun () -> Query_index.remove_object t.index id))

(* {2 Stats} *)

type stats = {
  generation : int;
  backend : string;
  domains : int;
  n_objects : int;
  n_queries : int;
  n_groups : int;
  index_words : int;
  cached_targets : int;
  stale_cached : int;
  repreparations : int;
  evaluations : int;
}

let stats t =
  with_lock t (fun () ->
      let inst = Query_index.instance t.index in
      let stale =
        Hashtbl.fold
          (fun _ e acc -> if e.c_gen <> t.gen then acc + 1 else acc)
          t.cache 0
      in
      let live_evals =
        Hashtbl.fold
          (fun _ e acc -> acc + e.c_eval.Evaluator.evaluations ())
          t.cache 0
      in
      {
        generation = t.gen;
        backend = backend_name t;
        domains = Parallel.domains t.pool;
        n_objects = Instance.n_objects inst;
        n_queries = Instance.n_queries inst;
        n_groups = Query_index.n_groups t.index;
        index_words = Query_index.size_words t.index;
        cached_targets = Hashtbl.length t.cache;
        stale_cached = stale;
        repreparations = t.repreps;
        evaluations = t.retired_evals + live_evals;
      })
