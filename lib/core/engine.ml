open Geom

(* The anytime payload of a deadline/cancellation trip: the best
   strategies found in fully completed iterations. [hits] is the exact
   hit (or union-hit) count of those strategies — a degraded answer is
   under-achieved, never silently wrong. *)
type partial = {
  p_strategies : (int * Strategy.t) list;
  p_hits : int;
  p_total_cost : float;
  p_iterations : int;
  p_flag : [ `Degraded ];
}

module Error = struct
  type t =
    | Dim_mismatch of { expected : int; got : int }
    | Unknown_target of { id : int; n_objects : int }
    | Unknown_query of { q : int; n_queries : int }
    | Depth_exceeded of { k : int; depth : int }
    | Budget_exhausted of float
    | Infeasible
    | Stale_state of { held : int; current : int }
    | Unknown_backend of string
    | Empty_targets
    | Deadline_exceeded of { elapsed_ms : float; partial : partial option }
    | Cancelled of { partial : partial option }
    | Fault_spec of { spec : string; msg : string }
    | Wal_corrupt of { path : string; offset : int }
    | Internal of string

  let partial_str = function
    | None -> "no partial result"
    | Some p ->
        Printf.sprintf "degraded partial: %d hits at cost %g after %d iterations"
          p.p_hits p.p_total_cost p.p_iterations

  let to_string = function
    | Dim_mismatch { expected; got } ->
        Printf.sprintf "dimension mismatch: expected %d, got %d" expected got
    | Unknown_target { id; n_objects } ->
        Printf.sprintf "unknown target %d (instance has %d objects)" id
          n_objects
    | Unknown_query { q; n_queries } ->
        Printf.sprintf "unknown query %d (workload has %d queries)" q
          n_queries
    | Depth_exceeded { k; depth } ->
        Printf.sprintf
          "query k=%d exceeds index depth %d (rebuild with depth_slack)" k
          depth
    | Budget_exhausted beta -> Printf.sprintf "budget %g is negative" beta
    | Infeasible -> "goal unreachable: no feasible strategy"
    | Stale_state { held; current } ->
        Printf.sprintf "stale state: prepared at generation %d, engine at %d"
          held current
    | Unknown_backend name ->
        Printf.sprintf "unknown backend %S (expected ese, scan or rta)" name
    | Empty_targets -> "no targets given"
    | Deadline_exceeded { elapsed_ms; partial } ->
        Printf.sprintf "deadline exceeded after %.1f ms (%s)" elapsed_ms
          (partial_str partial)
    | Cancelled { partial } ->
        Printf.sprintf "cancelled (%s)" (partial_str partial)
    | Fault_spec { spec; msg } ->
        Printf.sprintf "bad IQ_FAULT spec %S: %s" spec msg
    | Wal_corrupt { path; offset } ->
        Printf.sprintf "corrupt durable log %s at byte %d" path offset
    | Internal msg -> "internal error: " ^ msg

  let pp ppf e = Format.pp_print_string ppf (to_string e)
end

let ( let* ) = Result.bind

(* Last-resort boundary conversion. The inner layers guard their
   invariants with [invalid_arg]/[assert] and the pool re-raises
   worker exceptions; the serving boundary promises typed results, so
   anything that still escapes becomes [Error (Internal _)] here
   rather than a raw exception in the caller's lap. The handler is
   deliberately total — at a serving boundary even Out_of_memory is
   better reported than leaked. *)
let guard f =
  try f () with e -> Error (Error.Internal (Printexc.to_string e))

module type BACKEND = sig
  val name : string

  val prepare :
    layers:(int -> int) option ->
    index:Query_index.t ->
    pool:Parallel.pool ->
    target:int ->
    Evaluator.t * Ese.state option
end

type backend = (module BACKEND)

module Ese_backend = struct
  let name = "ese"

  let prepare ~layers ~index ~pool:_ ~target =
    let state = Ese.prepare ?layers index ~target in
    (Evaluator.of_state index state, Some state)
end

module Scan_backend = struct
  let name = "scan"

  let prepare ~layers:_ ~index ~pool ~target =
    (Evaluator.naive ~pool (Query_index.instance index) ~target, None)
end

module Rta_backend = struct
  let name = "rta"

  let prepare ~layers:_ ~index ~pool ~target =
    (Evaluator.rta ~pool (Query_index.instance index) ~target, None)
end

let backend_of_name name =
  match String.lowercase_ascii (String.trim name) with
  | "ese" | "efficient" | "efficient-iq" -> Ok (module Ese_backend : BACKEND)
  | "scan" | "naive" -> Ok (module Scan_backend : BACKEND)
  | "rta" | "rta-iq" -> Ok (module Rta_backend : BACKEND)
  | other -> Error (Error.Unknown_backend other)

let default_backend () = backend_of_name (Workload.Config.backend ())

(* {2 Resilience configuration} *)

type resilience = {
  retries : int;
  backoff_ms : float;
  circuit_threshold : int;
  circuit_cooldown_ms : float;
  fault : Resilience.Fault.t option;
}

let default_resilience () =
  {
    retries = Workload.Config.retries ();
    backoff_ms = 1.;
    circuit_threshold = 3;
    circuit_cooldown_ms = 100.;
    fault = None;
  }

(* {2 Durability hooks} *)

(* The plain-data description of one successful mutation, exactly as
   submitted (queries pre-normalization): what the durable layer
   journals and what replay feeds back through {!apply_mutation}, so a
   recovered engine runs the very same code paths the original did. *)
type mutation =
  | M_add_object of Vec.t
  | M_update_object of { id : int; raw : Vec.t }
  | M_remove_object of int
  | M_add_query of Topk.Query.t
  | M_remove_query of int

(* The durable backend as the engine sees it: callbacks invoked under
   the writer lock. [j_append] persists one mutation record before the
   successor snapshot publishes (a raise aborts the mutation, so no
   acknowledged mutation can be lost); [j_checkpoint] persists a whole
   snapshot and truncates the log. The engine stays file-format
   agnostic — [Durable.Store] owns the bytes. *)
type journal = {
  j_append : generation:int -> mutation -> int;
  j_checkpoint : Snapshot.t -> int;
  j_every : int option;
}

(* The degradation order: every engine falls back ese -> rta -> scan
   from its primary onwards (a custom primary falls back to the full
   built-in chain). The last link is the ground-truth scan — slowest,
   least machinery, most likely to survive. *)
let builtin_chain = [ (module Ese_backend : BACKEND); (module Rta_backend); (module Scan_backend) ]

let chain_of (module B : BACKEND) =
  let rec after = function
    | [] -> []
    | (module C : BACKEND) :: rest ->
        if String.equal C.name B.name then rest else after rest
  in
  let is_builtin =
    List.exists (fun (module C : BACKEND) -> String.equal C.name B.name) builtin_chain
  in
  let tail = if is_builtin then after builtin_chain else builtin_chain in
  Array.of_list ((module B : BACKEND) :: tail)

(* Per-backend health accounting. Every field is an [Atomic] so the
   counters can be bumped from any reader domain (prepares now run
   under per-snapshot locks, not one engine lock) and read by [stats]
   concurrently with a writer — no torn reads, no lock. The records
   themselves are pre-created per chain link at engine construction,
   so the table is never mutated after creation. [bs_open_until_ms]
   is the circuit breaker: non-zero while the backend is skipped
   outright; after the cooldown the next prepare half-opens it (one
   trial attempt; failure re-opens, success closes). *)
type bstat = {
  bs_attempts : int Atomic.t;
  bs_failures : int Atomic.t;
  bs_retries : int Atomic.t;
  bs_fallbacks : int Atomic.t;
  bs_consecutive : int Atomic.t;
  bs_open_until_ms : float Atomic.t;
}

let fresh_bstat () =
  {
    bs_attempts = Atomic.make 0;
    bs_failures = Atomic.make 0;
    bs_retries = Atomic.make 0;
    bs_fallbacks = Atomic.make 0;
    bs_consecutive = Atomic.make 0;
    bs_open_until_ms = Atomic.make 0.;
  }

(* The MVCC core. [current] is the published snapshot: readers
   [Atomic.get] it (acquire) and then work against that immutable
   bundle for the whole call; the writer path builds the successor
   through the functional [Query_index.with_*] updates under [wlock]
   and [Atomic.set]s it (release). Nothing a reader touches is ever
   patched in place, so a pinned snapshot stays valid forever.

   [slock] protects the small cross-generation tables: [seen] (which
   targets were prepared at which generation — the bridge that keeps
   the pre-MVCC [cached_targets]/[stale_cached]/[repreparations]
   stats semantics), [pins] (generation -> live session pin count)
   and [retained] (the IQ_SNAPSHOT_KEEP ring of recently retired
   snapshots kept reachable for late readers). Lock order is
   snapshot-lock -> slock; [wlock] never nests inside either. *)
type t = {
  pool : Parallel.pool;
  backend : backend;
  chain : backend array;
  res : resilience;
  prune : bool;
  current : Snapshot.t Atomic.t;
  wlock : Mutex.t;
  slock : Mutex.t;
  seen : (int, int) Hashtbl.t;
  pins : (int, int) Hashtbl.t;
  mutable retained : Snapshot.t list;
  keep : int;
  bstats : (string, bstat) Hashtbl.t;
  last_dom : (int * int) option Atomic.t;
      (* (generation, layer_count) of the most recently built onion,
         for {!dominance_stats}: a stale pair after a mutation is the
         observable form of "rebuilt lazily on next prepare" *)
  repreps : int Atomic.t;
  retired_evals : int Atomic.t;
      (* evaluation counts of retired snapshots and replaced cache
         entries, so [stats] stays monotonic across generations *)
  deadline_trips : int Atomic.t;
  cancellations : int Atomic.t;
  (* admission control for serving sessions *)
  alock : Mutex.t;
  mutable adm_active : int;
  mutable adm_waiting : int;
  adm_max : int;
  rejections : int Atomic.t;
  (* durability: the attached journal plus its accounting. [journal]
     is written once at attach time and read under [wlock] on the
     mutation path; the counters are Atomics so [stats] can read them
     from any domain. [wal_bytes] counts log bytes since the last
     checkpoint (the log is truncated there); [last_ckpt] is -1 until
     a checkpoint exists. *)
  journal : journal option Atomic.t;
  wal_bytes : int Atomic.t;
  last_ckpt : int Atomic.t;
  replayed : int Atomic.t;
  muts_since_ckpt : int Atomic.t;
}

let with_mutex m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let resolve_backend = function Some b -> Ok b | None -> default_backend ()

(* Without an explicit config the environment decides: IQ_RETRIES for
   the retry count and IQ_FAULT for an injection schedule. A malformed
   spec is a typed error — silently running without the faults a chaos
   run asked for would invalidate the run. *)
let resolve_resilience = function
  | Some r -> Ok r
  | None -> (
      match Resilience.Fault.of_env () with
      | Ok fault -> Ok { (default_resilience ()) with fault }
      | Error msg -> (
          match Workload.Config.fault () with
          | Some spec -> Error (Error.Fault_spec { spec; msg })
          | None -> Error (Error.Fault_spec { spec = ""; msg })))

(* The per-link table is fixed at creation with an entry for every
   chain link, so this lookup is a read of an immutable Hashtbl and
   safe from any domain; the [None] arm is unreachable by construction
   and yields a throwaway record rather than a raise. *)
let bstat t name =
  match Hashtbl.find_opt t.bstats name with
  | Some st -> st
  | None -> fresh_bstat ()

let of_index ?backend ?resilience ?prune ?generation ?pool index =
  guard @@ fun () ->
  let* b = resolve_backend backend in
  let* res = resolve_resilience resilience in
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let prune =
    match prune with Some p -> p | None -> Workload.Config.prune ()
  in
  let chain = chain_of b in
  let bstats = Hashtbl.create 4 in
  Array.iter
    (fun (module B : BACKEND) ->
      if not (Hashtbl.mem bstats B.name) then
        Hashtbl.add bstats B.name (fresh_bstat ()))
    chain;
  Ok
    {
      pool;
      backend = b;
      chain;
      res;
      prune;
      current = Atomic.make (Snapshot.root ?generation ~prune index);
      wlock = Mutex.create ();
      slock = Mutex.create ();
      seen = Hashtbl.create 16;
      pins = Hashtbl.create 8;
      retained = [];
      keep = Workload.Config.snapshot_keep ();
      bstats;
      last_dom = Atomic.make None;
      repreps = Atomic.make 0;
      retired_evals = Atomic.make 0;
      deadline_trips = Atomic.make 0;
      cancellations = Atomic.make 0;
      alock = Mutex.create ();
      adm_active = 0;
      adm_waiting = 0;
      adm_max = Workload.Config.max_sessions ();
      rejections = Atomic.make 0;
      journal = Atomic.make None;
      wal_bytes = Atomic.make 0;
      last_ckpt = Atomic.make (-1);
      replayed = Atomic.make 0;
      muts_since_ckpt = Atomic.make 0;
    }

let create ?backend ?resilience ?prune ?generation ?depth_slack ?method_ ?pool
    inst =
  guard @@ fun () ->
  let* b = resolve_backend backend in
  let* res = resolve_resilience resilience in
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  (* The index build consults its own fault site; transient injections
     are retried like a backend's, anything else escapes to [guard]. *)
  let rec build tries =
    match
      Resilience.Fault.point res.fault ~site:"index.build";
      Query_index.build ?depth_slack ?method_ ~pool inst
    with
    | index -> index
    | exception e when Resilience.Fault.transient_exn e && tries > 0 ->
        build (tries - 1)
  in
  let index = build res.retries in
  of_index ~backend:b ~resilience:res ?prune ?generation ~pool index

let create_exn ?backend ?resilience ?prune ?depth_slack ?method_ ?pool inst =
  match create ?backend ?resilience ?prune ?depth_slack ?method_ ?pool inst with
  | Ok t -> t
  | Error e -> invalid_arg ("Engine.create: " ^ Error.to_string e)

let snapshot t = Atomic.get t.current

let resolve_snap t = function Some s -> s | None -> snapshot t

let instance t = Snapshot.instance (snapshot t)

let index t = Snapshot.index (snapshot t)

let pool t = t.pool

let generation t = Snapshot.generation (snapshot t)

let backend_name t =
  let (module B : BACKEND) = t.backend in
  B.name

let pruning_enabled t = t.prune

let dominance_stats t = Atomic.get t.last_dom

(* {2 Validation} *)

let check_target_in snap id =
  let n = Instance.n_objects (Snapshot.instance snap) in
  if id < 0 || id >= n then Error (Error.Unknown_target { id; n_objects = n })
  else Ok ()

let check_query_in snap q =
  let m = Instance.n_queries (Snapshot.instance snap) in
  if q < 0 || q >= m then Error (Error.Unknown_query { q; n_queries = m })
  else Ok ()

let check_dim ~expected ~got =
  if expected <> got then Error (Error.Dim_mismatch { expected; got })
  else Ok ()

(* {2 Evaluator cache and failover} *)

let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

(* Instrument an evaluator's hit_count with the backend's eval fault
   site. Only when a schedule is loaded — the clean path keeps the
   original closure untouched. *)
let wrap_eval t bname (eval : Evaluator.t) =
  match t.res.fault with
  | None -> eval
  | Some _ ->
      let site = "backend." ^ bname ^ ".eval" in
      {
        eval with
        Evaluator.hit_count =
          (fun s ->
            Resilience.Fault.point t.res.fault ~site;
            eval.Evaluator.hit_count s);
      }

(* Prepare [target] against [snap] starting at chain link [from_pos];
   the snapshot's cache lock is held. Circuit-open backends are
   skipped outright; an injected transient retries the same backend
   with doubling backoff; a persistent injection marks the failure and
   falls through to the next link. Only {!Resilience.Fault.Injected}
   drives failover — any other exception is a genuine bug and
   propagates to [guard]. *)
let prepare_in t snap ~target ~from_pos =
  let n = Array.length t.chain in
  let rec try_pos pos last =
    if pos >= n then
      match last with
      | Some e -> raise e
      | None -> invalid_arg "Engine: empty backend chain"
    else
      let (module B : BACKEND) = t.chain.(pos) in
      let st = bstat t B.name in
      if Atomic.get st.bs_open_until_ms > Resilience.now_ms () then begin
        Atomic.incr st.bs_fallbacks;
        try_pos (pos + 1) last
      end
      else
        let site = "backend." ^ B.name ^ ".prepare" in
        let rec attempt tries_left =
          Atomic.incr st.bs_attempts;
          match
            Resilience.Fault.point t.res.fault ~site;
            B.prepare ~layers:(Snapshot.layers snap)
              ~index:(Snapshot.index snap) ~pool:t.pool ~target
          with
          | eval, state ->
              Atomic.set st.bs_consecutive 0;
              Atomic.set st.bs_open_until_ms 0.;
              (pos, B.name, eval, state)
          | exception Resilience.Fault.Injected { transient = true; _ }
            when tries_left > 0 ->
              Atomic.incr st.bs_retries;
              sleep_ms
                (t.res.backoff_ms
                *. (2. ** float_of_int (t.res.retries - tries_left)));
              attempt (tries_left - 1)
          | exception (Resilience.Fault.Injected _ as e) ->
              Atomic.incr st.bs_failures;
              Atomic.incr st.bs_consecutive;
              if Atomic.get st.bs_consecutive >= t.res.circuit_threshold then
                Atomic.set st.bs_open_until_ms
                  (Resilience.now_ms () +. t.res.circuit_cooldown_ms);
              Atomic.incr st.bs_fallbacks;
              try_pos (pos + 1) (Some e)
        in
        attempt t.res.retries
  in
  let pos, bname, eval, state = try_pos from_pos None in
  let e =
    {
      Snapshot.e_eval = wrap_eval t bname eval;
      e_state = state;
      e_pos = pos;
      e_bname = bname;
    }
  in
  (* A same-snapshot replacement (failover past a poisoned entry)
     retires the old entry's evaluation count so [stats] stays
     monotonic. Entries of retired snapshots were already folded in
     when the writer published their successor. *)
  (match Snapshot.find_entry snap target with
  | Some old when snap == Atomic.get t.current ->
      ignore
        (Atomic.fetch_and_add t.retired_evals
           (old.Snapshot.e_eval.Evaluator.evaluations ()))
  | Some _ | None -> ());
  Snapshot.set_entry snap target e;
  let gen = Snapshot.generation snap in
  with_mutex t.slock (fun () ->
      (match Hashtbl.find_opt t.seen target with
      | Some g when g <> gen ->
          (* Transparent re-preparation: a mutation moved the engine
             past this target's last evaluator. *)
          Atomic.incr t.repreps
      | Some _ | None -> ());
      Hashtbl.replace t.seen target gen);
  (match Snapshot.onion_layers snap with
  | Some layers -> Atomic.set t.last_dom (Some (gen, layers))
  | None -> ());
  e

(* Cache lookup honouring a minimum chain position: a search that just
   watched chain link [e_pos] fail asks for [min_pos = e_pos + 1] so
   the retry skips the poisoned entry. Generation staleness needs no
   check here — an entry lives in exactly one snapshot. *)
let entry_in t snap ~target ~min_pos =
  match Snapshot.find_entry snap target with
  | Some e when e.Snapshot.e_pos >= min_pos -> e
  | Some _ | None -> prepare_in t snap ~target ~from_pos:min_pos

let entry ?snap t ~target =
  let snap = resolve_snap t snap in
  Snapshot.locked snap (fun () -> entry_in t snap ~target ~min_pos:0)

(* Run [f] over the target's cached entry, treating injected eval
   faults like prepare faults: transients retry the same backend with
   backoff; persistent injections advance down the chain (the cache
   entry is replaced, so later calls start from the healthy backend).
   Each retry restarts [f] from scratch — searches are pure over the
   evaluator, so the restart is safe, merely slower. The whole call
   runs against one snapshot: a mutation landing mid-search never
   forces a re-prepare. *)
let with_failover ?snap t ~target f =
  let snap = resolve_snap t snap in
  let n = Array.length t.chain in
  let rec go ~min_pos tries_left =
    let e = Snapshot.locked snap (fun () -> entry_in t snap ~target ~min_pos) in
    match f e with
    | r -> r
    | exception Resilience.Fault.Injected { transient = true; _ }
      when tries_left > 0 ->
        Atomic.incr (bstat t e.Snapshot.e_bname).bs_retries;
        sleep_ms
          (t.res.backoff_ms *. (2. ** float_of_int (t.res.retries - tries_left)));
        go ~min_pos (tries_left - 1)
    | exception (Resilience.Fault.Injected _ as ex) ->
        let st = bstat t e.Snapshot.e_bname in
        Atomic.incr st.bs_failures;
        Atomic.incr st.bs_consecutive;
        if Atomic.get st.bs_consecutive >= t.res.circuit_threshold then
          Atomic.set st.bs_open_until_ms
            (Resilience.now_ms () +. t.res.circuit_cooldown_ms);
        Atomic.incr st.bs_fallbacks;
        if e.Snapshot.e_pos + 1 >= n then raise ex
        else go ~min_pos:(e.Snapshot.e_pos + 1) t.res.retries
  in
  go ~min_pos:0 t.res.retries

let evaluator ?snap t ~target =
  guard @@ fun () ->
  let snap = resolve_snap t snap in
  let* () = check_target_in snap target in
  Ok (entry ~snap t ~target).Snapshot.e_eval

let hits ?snap t ~target =
  let* ev = evaluator ?snap t ~target in
  Ok ev.Evaluator.base_hits

let member ?snap t ~target ~q =
  guard @@ fun () ->
  let snap = resolve_snap t snap in
  let* () = check_target_in snap target in
  let* () = check_query_in snap q in
  let e = entry ~snap t ~target in
  match e.Snapshot.e_state with
  | Some state -> Ok (Ese.member state ~q)
  | None ->
      Ok
        (e.Snapshot.e_eval.Evaluator.member ~q
           (Strategy.zero (Instance.dim (Snapshot.instance snap))))

let dirty_queries ?snap t ~target ~s =
  guard @@ fun () ->
  let snap = resolve_snap t snap in
  let* () = check_target_in snap target in
  let* () =
    check_dim ~expected:(Instance.dim (Snapshot.instance snap)) ~got:(Vec.dim s)
  in
  match (entry ~snap t ~target).Snapshot.e_state with
  | Some state -> Ok (Ese.dirty_queries state ~s)
  | None -> Ok (List.init (Instance.n_queries (Snapshot.instance snap)) Fun.id)

(* {2 Prepared handles} *)

type prepared = { p_target : int; p_gen : int; p_entry : Snapshot.entry }

let prepare t ~target =
  guard @@ fun () ->
  let snap = snapshot t in
  let* () = check_target_in snap target in
  let e = entry ~snap t ~target in
  Ok { p_target = target; p_gen = Snapshot.generation snap; p_entry = e }

let prepared_target p = p.p_target

let prepared_generation p = p.p_gen

let evaluate t p ~s =
  guard @@ fun () ->
  let* () =
    check_dim ~expected:(Instance.dim (instance t)) ~got:(Vec.dim s)
  in
  let current = generation t in
  if p.p_gen <> current then
    Error (Error.Stale_state { held = p.p_gen; current })
  else Ok (p.p_entry.Snapshot.e_eval.Evaluator.hit_count s)

(* Re-preparing a stale handle is the one read of its payload that must
   not be gated on the stamp: the target survives the generation change
   by design, and [prepare] re-stamps it against the live counter. *)
(* iqlint: allow generation-protocol *)
let refresh t p = prepare t ~target:p.p_target

(* {2 Improvement queries} *)

(* Budget precedence: an explicit budget wins, then an explicit
   deadline argument, then the IQ_DEADLINE_MS environment knob, then
   the shared unlimited budget (whose checks are a few atomic reads —
   the clean path stays clean). *)
let resolve_budget ?deadline_ms ?budget () =
  match budget with
  | Some b -> b
  | None -> (
      let dl =
        match deadline_ms with
        | Some _ -> deadline_ms
        | None -> Workload.Config.deadline_ms ()
      in
      match dl with
      | Some ms -> Resilience.Budget.create ~deadline_ms:ms ()
      | None -> Resilience.Budget.unlimited)

(* Convert a degraded search outcome into the typed anytime error,
   bumping the engine's trip counters. A [Steps] trip is reported as
   [Deadline_exceeded] too — both mean "the request's budget ran out";
   the elapsed time is measured from the budget either way. *)
let degraded_error t budget trip partial =
  match (trip : Resilience.Budget.trip) with
  | Resilience.Budget.Cancelled ->
      Atomic.incr t.cancellations;
      Error (Error.Cancelled { partial = Some partial })
  | Resilience.Budget.Deadline { elapsed_ms } ->
      Atomic.incr t.deadline_trips;
      Error (Error.Deadline_exceeded { elapsed_ms; partial = Some partial })
  | Resilience.Budget.Steps _ ->
      Atomic.incr t.deadline_trips;
      Error
        (Error.Deadline_exceeded
           {
             elapsed_ms = Resilience.Budget.elapsed_ms budget;
             partial = Some partial;
           })

let min_cost ?limits ?max_iterations ?candidate_cap ?deadline_ms ?budget ?snap
    t ~cost ~target ~tau =
  guard @@ fun () ->
  let snap = resolve_snap t snap in
  let* () = check_target_in snap target in
  let* () =
    check_dim ~expected:(Instance.dim (Snapshot.instance snap))
      ~got:cost.Cost.dim
  in
  let budget = resolve_budget ?deadline_ms ?budget () in
  with_failover ~snap t ~target (fun e ->
      let before = e.Snapshot.e_eval.Evaluator.evaluations () in
      match
        Min_cost.search ?limits ?max_iterations ?candidate_cap ~pool:t.pool
          ~budget ?fault:t.res.fault ~evaluator:e.Snapshot.e_eval ~cost ~target
          ~tau ()
      with
      | None -> Error Error.Infeasible
      | Some o -> (
          (* The cached evaluator accumulates across calls; report only
             this call's work, as a fresh evaluator would. *)
          let o =
            { o with Min_cost.evaluations = o.Min_cost.evaluations - before }
          in
          match o.Min_cost.status with
          | `Complete -> Ok o
          | `Degraded trip ->
              degraded_error t budget trip
                {
                  p_strategies = [ (target, o.Min_cost.strategy) ];
                  p_hits = o.Min_cost.hits_after;
                  p_total_cost = o.Min_cost.total_cost;
                  p_iterations = o.Min_cost.iterations;
                  p_flag = `Degraded;
                }))

let max_hit ?limits ?max_iterations ?candidate_cap ?deadline_ms ?budget ?snap t
    ~cost ~target ~beta =
  guard @@ fun () ->
  if beta < 0. then Error (Error.Budget_exhausted beta)
  else
    let snap = resolve_snap t snap in
    let* () = check_target_in snap target in
    let* () =
      check_dim ~expected:(Instance.dim (Snapshot.instance snap))
        ~got:cost.Cost.dim
    in
    let budget = resolve_budget ?deadline_ms ?budget () in
    with_failover ~snap t ~target (fun e ->
        let before = e.Snapshot.e_eval.Evaluator.evaluations () in
        let o =
          Max_hit.search ?limits ?max_iterations ?candidate_cap ~pool:t.pool
            ~budget ?fault:t.res.fault ~evaluator:e.Snapshot.e_eval ~cost
            ~target ~beta ()
        in
        let o =
          { o with Max_hit.evaluations = o.Max_hit.evaluations - before }
        in
        match o.Max_hit.status with
        | `Complete -> Ok o
        | `Degraded trip ->
            degraded_error t budget trip
              {
                p_strategies = [ (target, o.Max_hit.strategy) ];
                p_hits = o.Max_hit.hits_after;
                p_total_cost = o.Max_hit.total_cost;
                p_iterations = o.Max_hit.iterations;
                p_flag = `Degraded;
              })

let check_costs snap costs =
  if costs = [] then Error Error.Empty_targets
  else
    let d = Instance.dim (Snapshot.instance snap) in
    List.fold_left
      (fun acc (target, cost) ->
        let* () = acc in
        let* () = check_target_in snap target in
        check_dim ~expected:d ~got:cost.Cost.dim)
      (Ok ()) costs

let cached_states t snap costs =
  List.filter_map
    (fun (target, _) ->
      match (entry ~snap t ~target).Snapshot.e_state with
      | Some state -> Some (target, state)
      | None -> None)
    costs

let multi_partial o =
  {
    p_strategies = o.Combinatorial.strategies;
    p_hits = o.Combinatorial.union_hits_after;
    p_total_cost = o.Combinatorial.total_cost;
    p_iterations = o.Combinatorial.iterations;
    p_flag = `Degraded;
  }

(* The multi-target searches thread budget and faults through
   {!Combinatorial} but have no per-eval failover: their candidate
   scan runs on ESE states directly, not through a backend evaluator,
   so an injected fault there surfaces via [guard] as [Internal]. *)
let min_cost_multi ?limits ?max_iterations ?candidate_cap ?deadline_ms ?budget
    ?snap t ~costs ~tau =
  guard @@ fun () ->
  let snap = resolve_snap t snap in
  let* () = check_costs snap costs in
  let budget = resolve_budget ?deadline_ms ?budget () in
  let states = cached_states t snap costs in
  match
    Combinatorial.min_cost ?limits ?max_iterations ?candidate_cap ~states
      ~budget ?fault:t.res.fault ~index:(Snapshot.index snap) ~costs ~tau ()
  with
  | None -> Error Error.Infeasible
  | Some o -> (
      match o.Combinatorial.status with
      | `Complete -> Ok o
      | `Degraded trip -> degraded_error t budget trip (multi_partial o))

let max_hit_multi ?limits ?max_iterations ?candidate_cap ?deadline_ms ?budget
    ?snap t ~costs ~beta =
  guard @@ fun () ->
  if beta < 0. then Error (Error.Budget_exhausted beta)
  else
    let snap = resolve_snap t snap in
    let* () = check_costs snap costs in
    let budget = resolve_budget ?deadline_ms ?budget () in
    let states = cached_states t snap costs in
    let o =
      Combinatorial.max_hit ?limits ?max_iterations ?candidate_cap ~states
        ~budget ?fault:t.res.fault ~index:(Snapshot.index snap) ~costs ~beta ()
    in
    match o.Combinatorial.status with
    | `Complete -> Ok o
    | `Degraded trip -> degraded_error t budget trip (multi_partial o)

(* {2 Dataset maintenance} *)

(* Persist a checkpoint of [snap] through the journal and reset the
   log accounting. Called under [wlock] only; a raise inside
   [j_checkpoint] (injected fault, full disk) leaves the counters
   untouched — the log still covers everything since the last
   successful checkpoint, so recovery is unaffected. *)
let checkpoint_locked t j snap =
  let _bytes : int = j.j_checkpoint snap in
  Atomic.set t.last_ckpt (Snapshot.generation snap);
  Atomic.set t.wal_bytes 0;
  Atomic.set t.muts_since_ckpt 0

(* The single writer path. Under [wlock]: validate against the
   snapshot that will actually be mutated, build the successor index
   through the functional [Query_index.with_*] updates (the published
   snapshot is never touched), journal the mutation (write-ahead: a
   journal failure aborts before anything becomes visible), fold the
   outgoing generation's evaluation counts into the retired total,
   slide the retention ring, and publish. [Atomic.set] gives release
   semantics: a reader that acquires the new snapshot sees every write
   that built it. After publishing, a due automatic checkpoint
   ([j_every]) runs while the lock is still held. *)
let mutate t ~m validate f =
  with_mutex t.wlock (fun () ->
      let snap = Atomic.get t.current in
      let* () = validate snap in
      let index', r = f (Snapshot.index snap) in
      let snap' = Snapshot.next snap index' in
      (match Atomic.get t.journal with
      | None -> ()
      | Some j ->
          let bytes =
            j.j_append ~generation:(Snapshot.generation snap') m
          in
          ignore (Atomic.fetch_and_add t.wal_bytes bytes));
      let outgoing = Snapshot.eval_total snap in
      if outgoing > 0 then
        ignore (Atomic.fetch_and_add t.retired_evals outgoing);
      with_mutex t.slock (fun () ->
          let rec take n = function
            | [] -> []
            | _ when n <= 0 -> []
            | s :: rest -> s :: take (n - 1) rest
          in
          t.retained <- take t.keep (snap :: t.retained));
      Atomic.set t.current snap';
      (match Atomic.get t.journal with
      | None -> ()
      | Some j -> (
          match j.j_every with
          | Some every
            when 1 + Atomic.fetch_and_add t.muts_since_ckpt 1 >= every ->
              checkpoint_locked t j snap'
          | Some _ | None -> ()));
      Ok r)

let add_query t q =
  guard @@ fun () ->
  mutate t ~m:(M_add_query q)
    (fun snap ->
      let* () =
        check_dim
          ~expected:(Instance.dim (Snapshot.instance snap))
          ~got:(Vec.dim q.Topk.Query.weights)
      in
      let depth = Query_index.depth (Snapshot.index snap) in
      if q.Topk.Query.k + 1 > depth then
        Error (Error.Depth_exceeded { k = q.Topk.Query.k; depth })
      else Ok ())
    (fun idx -> Query_index.with_query_added idx q)

let remove_query t q =
  guard @@ fun () ->
  mutate t ~m:(M_remove_query q)
    (fun snap -> check_query_in snap q)
    (fun idx -> (Query_index.with_query_removed idx q, ()))

let add_object t raw =
  guard @@ fun () ->
  mutate t ~m:(M_add_object raw)
    (fun snap ->
      check_dim
        ~expected:(Instance.dim_raw (Snapshot.instance snap))
        ~got:(Vec.dim raw))
    (fun idx -> Query_index.with_object_added idx raw)

let update_object t id raw =
  guard @@ fun () ->
  mutate t ~m:(M_update_object { id; raw })
    (fun snap ->
      let* () = check_target_in snap id in
      check_dim
        ~expected:(Instance.dim_raw (Snapshot.instance snap))
        ~got:(Vec.dim raw))
    (fun idx -> (Query_index.with_object_updated idx id raw, ()))

let remove_object t id =
  guard @@ fun () ->
  mutate t ~m:(M_remove_object id)
    (fun snap -> check_target_in snap id)
    (fun idx -> (Query_index.with_object_removed idx id, ()))

(* {2 Durability API} *)

let attach_journal ?(replayed_records = 0) ?checkpoint_generation
    ?(wal_bytes = 0) t j =
  Atomic.set t.replayed replayed_records;
  (match checkpoint_generation with
  | Some g -> Atomic.set t.last_ckpt g
  | None -> ());
  Atomic.set t.wal_bytes wal_bytes;
  Atomic.set t.muts_since_ckpt 0;
  Atomic.set t.journal (Some j)

let detach_journal t = Atomic.set t.journal None

let journaled t = Atomic.get t.journal <> None

let checkpoint t =
  guard @@ fun () ->
  with_mutex t.wlock (fun () ->
      match Atomic.get t.journal with
      | None -> Ok ()
      | Some j ->
          checkpoint_locked t j (Atomic.get t.current);
          Ok ())

let apply_mutation t m =
  match m with
  | M_add_object raw -> Result.map (fun (_ : int) -> ()) (add_object t raw)
  | M_update_object { id; raw } -> update_object t id raw
  | M_remove_object id -> remove_object t id
  | M_add_query q -> Result.map (fun (_ : int) -> ()) (add_query t q)
  | M_remove_query q -> remove_query t q

(* {2 Serving sessions: admission and snapshot pinning} *)

let pin t snap =
  let g = Snapshot.generation snap in
  with_mutex t.slock (fun () ->
      let n = Option.value ~default:0 (Hashtbl.find_opt t.pins g) in
      Hashtbl.replace t.pins g (n + 1))

let unpin t snap =
  let g = Snapshot.generation snap in
  with_mutex t.slock (fun () ->
      match Hashtbl.find_opt t.pins g with
      | Some n when n <= 1 -> Hashtbl.remove t.pins g
      | Some n -> Hashtbl.replace t.pins g (n - 1)
      | None -> ())

(* Wait for an admission slot. OCaml's stdlib [Condition] has no timed
   wait, so a full queue polls: each miss checks the caller's budget
   (deadline/cancellation) and sleeps 1ms. A tripped budget while
   queued is an admission rejection — typed like any other deadline. *)
let acquire_slot t ~budget =
  let registered = ref false in
  let enter () =
    with_mutex t.alock (fun () ->
        if t.adm_active < t.adm_max then begin
          t.adm_active <- t.adm_active + 1;
          if !registered then t.adm_waiting <- t.adm_waiting - 1;
          true
        end
        else begin
          if not !registered then begin
            registered := true;
            t.adm_waiting <- t.adm_waiting + 1
          end;
          false
        end)
  in
  let give_up () =
    with_mutex t.alock (fun () ->
        if !registered then t.adm_waiting <- t.adm_waiting - 1)
  in
  let rec loop () =
    if enter () then Ok ()
    else
      match Resilience.Budget.check budget with
      | Some trip -> (
          give_up ();
          Atomic.incr t.rejections;
          match trip with
          | Resilience.Budget.Cancelled ->
              Error (Error.Cancelled { partial = None })
          | Resilience.Budget.Deadline { elapsed_ms } ->
              Error (Error.Deadline_exceeded { elapsed_ms; partial = None })
          | Resilience.Budget.Steps _ ->
              Error
                (Error.Deadline_exceeded
                   {
                     elapsed_ms = Resilience.Budget.elapsed_ms budget;
                     partial = None;
                   }))
      | None ->
          Unix.sleepf 0.001;
          loop ()
  in
  loop ()

let release_slot t =
  with_mutex t.alock (fun () -> t.adm_active <- Int.max 0 (t.adm_active - 1))

let acquire_session ?deadline_ms ?budget t =
  guard @@ fun () ->
  let budget = resolve_budget ?deadline_ms ?budget () in
  let* () = acquire_slot t ~budget in
  let snap = snapshot t in
  pin t snap;
  Ok snap

let release_session t snap =
  unpin t snap;
  release_slot t

let repin t snap =
  let snap' = snapshot t in
  if snap' != snap then begin
    pin t snap';
    unpin t snap
  end;
  snap'

(* {2 Stats} *)

type backend_stats = {
  b_name : string;
  b_attempts : int;
  b_failures : int;
  b_retries : int;
  b_fallbacks : int;
  b_circuit_open : bool;
}

type stats = {
  generation : int;
  backend : string;
  prune : bool;
  domains : int;
  n_objects : int;
  n_queries : int;
  n_groups : int;
  index_words : int;
  cached_targets : int;
  stale_cached : int;
  repreparations : int;
  evaluations : int;
  backends : backend_stats list;
  deadline_trips : int;
  cancellations : int;
  faults_injected : int;
  active_sessions : int;
  queue_depth : int;
  admission_rejections : int;
  pinned_snapshots : int;
  oldest_pinned : int option;
  wal_bytes : int;
  last_checkpoint_generation : int option;
  replayed_records : int;
}

let stats t =
  let snap = snapshot t in
  let gen = Snapshot.generation snap in
  let inst = Snapshot.instance snap in
  let cached, stale, pinned, oldest =
    with_mutex t.slock (fun () ->
        let cached, stale =
          Hashtbl.fold
            (fun _ g (c, s) -> (c + 1, if g <> gen then s + 1 else s))
            t.seen (0, 0)
        in
        let pinned = Hashtbl.length t.pins in
        let oldest =
          Hashtbl.fold
            (fun g _ acc ->
              match acc with Some o when o <= g -> acc | _ -> Some g)
            t.pins None
        in
        (cached, stale, pinned, oldest))
  in
  let live_evals = Snapshot.eval_total snap in
  let active, waiting =
    with_mutex t.alock (fun () -> (t.adm_active, t.adm_waiting))
  in
  let backends =
    Array.to_list t.chain
    |> List.filter_map (fun (module B : BACKEND) ->
           let st = bstat t B.name in
           if Atomic.get st.bs_attempts = 0 && Atomic.get st.bs_fallbacks = 0
           then None
           else
             Some
               {
                 b_name = B.name;
                 b_attempts = Atomic.get st.bs_attempts;
                 b_failures = Atomic.get st.bs_failures;
                 b_retries = Atomic.get st.bs_retries;
                 b_fallbacks = Atomic.get st.bs_fallbacks;
                 b_circuit_open =
                   Atomic.get st.bs_open_until_ms > Resilience.now_ms ();
               })
  in
  {
    generation = gen;
    backend = backend_name t;
    prune = t.prune;
    domains = Parallel.domains t.pool;
    n_objects = Instance.n_objects inst;
    n_queries = Instance.n_queries inst;
    n_groups = Query_index.n_groups (Snapshot.index snap);
    index_words = Query_index.size_words (Snapshot.index snap);
    cached_targets = cached;
    stale_cached = stale;
    repreparations = Atomic.get t.repreps;
    evaluations = Atomic.get t.retired_evals + live_evals;
    backends;
    deadline_trips = Atomic.get t.deadline_trips;
    cancellations = Atomic.get t.cancellations;
    faults_injected =
      (match t.res.fault with
      | None -> 0
      | Some f -> Resilience.Fault.injections f);
    active_sessions = active;
    queue_depth = waiting;
    admission_rejections = Atomic.get t.rejections;
    pinned_snapshots = pinned;
    oldest_pinned = oldest;
    wal_bytes = Atomic.get t.wal_bytes;
    last_checkpoint_generation =
      (let g = Atomic.get t.last_ckpt in
       if g < 0 then None else Some g);
    replayed_records = Atomic.get t.replayed;
  }
