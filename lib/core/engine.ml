open Geom

(* The anytime payload of a deadline/cancellation trip: the best
   strategies found in fully completed iterations. [hits] is the exact
   hit (or union-hit) count of those strategies — a degraded answer is
   under-achieved, never silently wrong. *)
type partial = {
  p_strategies : (int * Strategy.t) list;
  p_hits : int;
  p_total_cost : float;
  p_iterations : int;
  p_flag : [ `Degraded ];
}

module Error = struct
  type t =
    | Dim_mismatch of { expected : int; got : int }
    | Unknown_target of { id : int; n_objects : int }
    | Unknown_query of { q : int; n_queries : int }
    | Depth_exceeded of { k : int; depth : int }
    | Budget_exhausted of float
    | Infeasible
    | Stale_state of { held : int; current : int }
    | Unknown_backend of string
    | Empty_targets
    | Deadline_exceeded of { elapsed_ms : float; partial : partial option }
    | Cancelled of { partial : partial option }
    | Fault_spec of { spec : string; msg : string }
    | Internal of string

  let partial_str = function
    | None -> "no partial result"
    | Some p ->
        Printf.sprintf "degraded partial: %d hits at cost %g after %d iterations"
          p.p_hits p.p_total_cost p.p_iterations

  let to_string = function
    | Dim_mismatch { expected; got } ->
        Printf.sprintf "dimension mismatch: expected %d, got %d" expected got
    | Unknown_target { id; n_objects } ->
        Printf.sprintf "unknown target %d (instance has %d objects)" id
          n_objects
    | Unknown_query { q; n_queries } ->
        Printf.sprintf "unknown query %d (workload has %d queries)" q
          n_queries
    | Depth_exceeded { k; depth } ->
        Printf.sprintf
          "query k=%d exceeds index depth %d (rebuild with depth_slack)" k
          depth
    | Budget_exhausted beta -> Printf.sprintf "budget %g is negative" beta
    | Infeasible -> "goal unreachable: no feasible strategy"
    | Stale_state { held; current } ->
        Printf.sprintf "stale state: prepared at generation %d, engine at %d"
          held current
    | Unknown_backend name ->
        Printf.sprintf "unknown backend %S (expected ese, scan or rta)" name
    | Empty_targets -> "no targets given"
    | Deadline_exceeded { elapsed_ms; partial } ->
        Printf.sprintf "deadline exceeded after %.1f ms (%s)" elapsed_ms
          (partial_str partial)
    | Cancelled { partial } ->
        Printf.sprintf "cancelled (%s)" (partial_str partial)
    | Fault_spec { spec; msg } ->
        Printf.sprintf "bad IQ_FAULT spec %S: %s" spec msg
    | Internal msg -> "internal error: " ^ msg

  let pp ppf e = Format.pp_print_string ppf (to_string e)
end

let ( let* ) = Result.bind

(* Last-resort boundary conversion. The inner layers guard their
   invariants with [invalid_arg]/[assert] and the pool re-raises
   worker exceptions; the serving boundary promises typed results, so
   anything that still escapes becomes [Error (Internal _)] here
   rather than a raw exception in the caller's lap. The handler is
   deliberately total — at a serving boundary even Out_of_memory is
   better reported than leaked. *)
let guard f =
  try f () with e -> Error (Error.Internal (Printexc.to_string e))

module type BACKEND = sig
  val name : string

  val prepare :
    layers:(int -> int) option ->
    index:Query_index.t ->
    pool:Parallel.pool ->
    target:int ->
    Evaluator.t * Ese.state option
end

type backend = (module BACKEND)

module Ese_backend = struct
  let name = "ese"

  let prepare ~layers ~index ~pool:_ ~target =
    let state = Ese.prepare ?layers index ~target in
    (Evaluator.of_state index state, Some state)
end

module Scan_backend = struct
  let name = "scan"

  let prepare ~layers:_ ~index ~pool ~target =
    (Evaluator.naive ~pool (Query_index.instance index) ~target, None)
end

module Rta_backend = struct
  let name = "rta"

  let prepare ~layers:_ ~index ~pool ~target =
    (Evaluator.rta ~pool (Query_index.instance index) ~target, None)
end

let backend_of_name name =
  match String.lowercase_ascii (String.trim name) with
  | "ese" | "efficient" | "efficient-iq" -> Ok (module Ese_backend : BACKEND)
  | "scan" | "naive" -> Ok (module Scan_backend : BACKEND)
  | "rta" | "rta-iq" -> Ok (module Rta_backend : BACKEND)
  | other -> Error (Error.Unknown_backend other)

let default_backend () = backend_of_name (Workload.Config.backend ())

(* {2 Resilience configuration} *)

type resilience = {
  retries : int;
  backoff_ms : float;
  circuit_threshold : int;
  circuit_cooldown_ms : float;
  fault : Resilience.Fault.t option;
}

let default_resilience () =
  {
    retries = Workload.Config.retries ();
    backoff_ms = 1.;
    circuit_threshold = 3;
    circuit_cooldown_ms = 100.;
    fault = None;
  }

(* The degradation order: every engine falls back ese -> rta -> scan
   from its primary onwards (a custom primary falls back to the full
   built-in chain). The last link is the ground-truth scan — slowest,
   least machinery, most likely to survive. *)
let builtin_chain = [ (module Ese_backend : BACKEND); (module Rta_backend); (module Scan_backend) ]

let chain_of (module B : BACKEND) =
  let rec after = function
    | [] -> []
    | (module C : BACKEND) :: rest ->
        if String.equal C.name B.name then rest else after rest
  in
  let is_builtin =
    List.exists (fun (module C : BACKEND) -> String.equal C.name B.name) builtin_chain
  in
  let tail = if is_builtin then after builtin_chain else builtin_chain in
  Array.of_list ((module B : BACKEND) :: tail)

(* Per-backend health accounting, engine-lock protected. [open_until_ms]
   is the circuit breaker: non-zero while the backend is skipped
   outright; after the cooldown the next prepare half-opens it (one
   trial attempt; failure re-opens, success closes). *)
type bstat = {
  mutable bs_attempts : int;
  mutable bs_failures : int;
  mutable bs_retries : int;
  mutable bs_fallbacks : int;
  mutable bs_consecutive : int;
  mutable bs_open_until_ms : float;
}

(* A cached per-target evaluator, pinned to the generation it was
   prepared at. The ESE state rides along (when the backend has one)
   so combinatorial searches reuse it instead of re-preparing.
   [c_pos] records which link of the fallback chain served it. *)
type centry = {
  c_gen : int;
  c_eval : Evaluator.t;
  c_state : Ese.state option;
  c_pos : int;
  c_bname : string;
}

type t = {
  index : Query_index.t;
  pool : Parallel.pool;
  backend : backend;
  chain : backend array;
  res : resilience;
  prune : bool;
  lock : Mutex.t;
  cache : (int, centry) Hashtbl.t;
  bstats : (string, bstat) Hashtbl.t;
  mutable gen : int;
  mutable dom : (int * Topk.Onion.t) option;
      (* lazily-built onion/dominance layer index over the current
         features, stamped with the generation it was built at; a
         mismatch on next prepare rebuilds it (mutations move objects) *)
  mutable repreps : int;
  mutable retired_evals : int;
      (* evaluation counts of cache entries already replaced, so
         [stats] stays monotonic across re-preparations *)
  mutable deadline_trips : int;
  mutable cancellations : int;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let resolve_backend = function Some b -> Ok b | None -> default_backend ()

(* Without an explicit config the environment decides: IQ_RETRIES for
   the retry count and IQ_FAULT for an injection schedule. A malformed
   spec is a typed error — silently running without the faults a chaos
   run asked for would invalidate the run. *)
let resolve_resilience = function
  | Some r -> Ok r
  | None -> (
      match Resilience.Fault.of_env () with
      | Ok fault -> Ok { (default_resilience ()) with fault }
      | Error msg -> (
          match Workload.Config.fault () with
          | Some spec -> Error (Error.Fault_spec { spec; msg })
          | None -> Error (Error.Fault_spec { spec = ""; msg })))

let bstat t name =
  match Hashtbl.find_opt t.bstats name with
  | Some s -> s
  | None ->
      let s =
        {
          bs_attempts = 0;
          bs_failures = 0;
          bs_retries = 0;
          bs_fallbacks = 0;
          bs_consecutive = 0;
          bs_open_until_ms = 0.;
        }
      in
      Hashtbl.add t.bstats name s;
      s

let of_index ?backend ?resilience ?prune ?pool index =
  guard @@ fun () ->
  let* b = resolve_backend backend in
  let* res = resolve_resilience resilience in
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let prune =
    match prune with Some p -> p | None -> Workload.Config.prune ()
  in
  Ok
    {
      index;
      pool;
      backend = b;
      chain = chain_of b;
      res;
      prune;
      lock = Mutex.create ();
      cache = Hashtbl.create 16;
      bstats = Hashtbl.create 4;
      gen = 0;
      dom = None;
      repreps = 0;
      retired_evals = 0;
      deadline_trips = 0;
      cancellations = 0;
    }

let create ?backend ?resilience ?prune ?depth_slack ?method_ ?pool inst =
  guard @@ fun () ->
  let* b = resolve_backend backend in
  let* res = resolve_resilience resilience in
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  (* The index build consults its own fault site; transient injections
     are retried like a backend's, anything else escapes to [guard]. *)
  let rec build tries =
    match
      Resilience.Fault.point res.fault ~site:"index.build";
      Query_index.build ?depth_slack ?method_ ~pool inst
    with
    | index -> index
    | exception e when Resilience.Fault.transient_exn e && tries > 0 ->
        build (tries - 1)
  in
  let index = build res.retries in
  of_index ~backend:b ~resilience:res ?prune ~pool index

let create_exn ?backend ?resilience ?prune ?depth_slack ?method_ ?pool inst =
  match create ?backend ?resilience ?prune ?depth_slack ?method_ ?pool inst with
  | Ok t -> t
  | Error e -> invalid_arg ("Engine.create: " ^ Error.to_string e)

let instance t = Query_index.instance t.index

let index t = t.index

let pool t = t.pool

let generation t = t.gen

let backend_name t =
  let (module B : BACKEND) = t.backend in
  B.name

let pruning_enabled t = t.prune

let dominance_stats t =
  with_lock t (fun () ->
      Option.map (fun (g, onion) -> (g, Topk.Onion.layer_count onion)) t.dom)

(* {2 Validation} *)

let check_target t id =
  let n = Instance.n_objects (instance t) in
  if id < 0 || id >= n then Error (Error.Unknown_target { id; n_objects = n })
  else Ok ()

let check_query t q =
  let m = Instance.n_queries (instance t) in
  if q < 0 || q >= m then Error (Error.Unknown_query { q; n_queries = m })
  else Ok ()

let check_dim ~expected ~got =
  if expected <> got then Error (Error.Dim_mismatch { expected; got })
  else Ok ()

(* {2 Evaluator cache and failover} *)

let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.)

(* Instrument an evaluator's hit_count with the backend's eval fault
   site. Only when a schedule is loaded — the clean path keeps the
   original closure untouched. *)
let wrap_eval t bname (eval : Evaluator.t) =
  match t.res.fault with
  | None -> eval
  | Some _ ->
      let site = "backend." ^ bname ^ ".eval" in
      {
        eval with
        Evaluator.hit_count =
          (fun s ->
            Resilience.Fault.point t.res.fault ~site;
            eval.Evaluator.hit_count s);
      }

(* The layer map handed to backends when pruning is on; engine lock
   held. The onion index is built lazily on first prepare and reused
   until a mutation moves the generation past its stamp — every object
   mutation can reshuffle layers, so a stale index is simply rebuilt
   rather than patched. *)
let layers_locked t =
  if not t.prune then None
  else begin
    let onion =
      match t.dom with
      | Some (g, onion) when g = t.gen -> onion
      | Some _ | None ->
          let onion =
            Topk.Onion.build (Query_index.instance t.index).Instance.features
          in
          t.dom <- Some (t.gen, onion);
          onion
    in
    Some (Topk.Onion.layer_of onion)
  end

(* Prepare [target] starting at chain link [from_pos]; engine lock
   held. Circuit-open backends are skipped outright; an injected
   transient retries the same backend with doubling backoff; a
   persistent injection marks the failure and falls through to the
   next link. Only {!Resilience.Fault.Injected} drives failover — any
   other exception is a genuine bug and propagates to [guard]. *)
let prepare_locked t ~target ~from_pos =
  let n = Array.length t.chain in
  let rec try_pos pos last =
    if pos >= n then
      match last with
      | Some e -> raise e
      | None -> invalid_arg "Engine: empty backend chain"
    else
      let (module B : BACKEND) = t.chain.(pos) in
      let st = bstat t B.name in
      if st.bs_open_until_ms > Resilience.now_ms () then begin
        st.bs_fallbacks <- st.bs_fallbacks + 1;
        try_pos (pos + 1) last
      end
      else
        let site = "backend." ^ B.name ^ ".prepare" in
        let rec attempt tries_left =
          st.bs_attempts <- st.bs_attempts + 1;
          match
            Resilience.Fault.point t.res.fault ~site;
            B.prepare ~layers:(layers_locked t) ~index:t.index ~pool:t.pool
              ~target
          with
          | eval, state ->
              st.bs_consecutive <- 0;
              st.bs_open_until_ms <- 0.;
              (pos, B.name, eval, state)
          | exception Resilience.Fault.Injected { transient = true; _ }
            when tries_left > 0 ->
              st.bs_retries <- st.bs_retries + 1;
              sleep_ms
                (t.res.backoff_ms
                *. (2. ** float_of_int (t.res.retries - tries_left)));
              attempt (tries_left - 1)
          | exception (Resilience.Fault.Injected _ as e) ->
              st.bs_failures <- st.bs_failures + 1;
              st.bs_consecutive <- st.bs_consecutive + 1;
              if st.bs_consecutive >= t.res.circuit_threshold then
                st.bs_open_until_ms <-
                  Resilience.now_ms () +. t.res.circuit_cooldown_ms;
              st.bs_fallbacks <- st.bs_fallbacks + 1;
              try_pos (pos + 1) (Some e)
        in
        attempt t.res.retries
  in
  let pos, bname, eval, state = try_pos from_pos None in
  let e =
    {
      c_gen = t.gen;
      c_eval = wrap_eval t bname eval;
      c_state = state;
      c_pos = pos;
      c_bname = bname;
    }
  in
  Hashtbl.replace t.cache target e;
  e

(* Cache lookup honouring both the generation and a minimum chain
   position: a search that just watched chain link [c_pos] fail asks
   for [min_pos = c_pos + 1] so the retry skips the poisoned entry. *)
let entry_locked t ~target ~min_pos =
  match Hashtbl.find_opt t.cache target with
  | Some e when e.c_gen = t.gen && e.c_pos >= min_pos -> e
  | Some stale ->
      if stale.c_gen <> t.gen then
        (* Transparent re-preparation: a mutation moved the engine
           past this entry's generation. *)
        t.repreps <- t.repreps + 1;
      t.retired_evals <-
        t.retired_evals + stale.c_eval.Evaluator.evaluations ();
      prepare_locked t ~target ~from_pos:min_pos
  | None -> prepare_locked t ~target ~from_pos:min_pos

let entry t ~target = with_lock t (fun () -> entry_locked t ~target ~min_pos:0)

(* Run [f] over the target's cached entry, treating injected eval
   faults like prepare faults: transients retry the same backend with
   backoff; persistent injections advance down the chain (the cache
   entry is replaced, so later calls start from the healthy backend).
   Each retry restarts [f] from scratch — searches are pure over the
   evaluator, so the restart is safe, merely slower. *)
let with_failover t ~target f =
  let n = Array.length t.chain in
  let rec go ~min_pos tries_left =
    let e = with_lock t (fun () -> entry_locked t ~target ~min_pos) in
    match f e with
    | r -> r
    | exception Resilience.Fault.Injected { transient = true; _ }
      when tries_left > 0 ->
        with_lock t (fun () ->
            let st = bstat t e.c_bname in
            st.bs_retries <- st.bs_retries + 1);
        sleep_ms
          (t.res.backoff_ms *. (2. ** float_of_int (t.res.retries - tries_left)));
        go ~min_pos (tries_left - 1)
    | exception (Resilience.Fault.Injected _ as ex) ->
        with_lock t (fun () ->
            let st = bstat t e.c_bname in
            st.bs_failures <- st.bs_failures + 1;
            st.bs_consecutive <- st.bs_consecutive + 1;
            if st.bs_consecutive >= t.res.circuit_threshold then
              st.bs_open_until_ms <-
                Resilience.now_ms () +. t.res.circuit_cooldown_ms;
            st.bs_fallbacks <- st.bs_fallbacks + 1);
        if e.c_pos + 1 >= n then raise ex
        else go ~min_pos:(e.c_pos + 1) t.res.retries
  in
  go ~min_pos:0 t.res.retries

let evaluator t ~target =
  guard @@ fun () ->
  let* () = check_target t target in
  Ok (entry t ~target).c_eval

let hits t ~target =
  let* ev = evaluator t ~target in
  Ok ev.Evaluator.base_hits

let member t ~target ~q =
  guard @@ fun () ->
  let* () = check_target t target in
  let* () = check_query t q in
  let e = entry t ~target in
  match e.c_state with
  | Some state -> Ok (Ese.member state ~q)
  | None ->
      Ok (e.c_eval.Evaluator.member ~q (Strategy.zero (Instance.dim (instance t))))

let dirty_queries t ~target ~s =
  guard @@ fun () ->
  let* () = check_target t target in
  let* () = check_dim ~expected:(Instance.dim (instance t)) ~got:(Vec.dim s) in
  match (entry t ~target).c_state with
  | Some state -> Ok (Ese.dirty_queries state ~s)
  | None -> Ok (List.init (Instance.n_queries (instance t)) Fun.id)

(* {2 Prepared handles} *)

type prepared = { p_target : int; p_gen : int; p_entry : centry }

let prepare t ~target =
  guard @@ fun () ->
  let* () = check_target t target in
  let e = entry t ~target in
  Ok { p_target = target; p_gen = e.c_gen; p_entry = e }

let prepared_target p = p.p_target

let prepared_generation p = p.p_gen

let evaluate t p ~s =
  guard @@ fun () ->
  let* () =
    check_dim ~expected:(Instance.dim (instance t)) ~got:(Vec.dim s)
  in
  let current = t.gen in
  if p.p_gen <> current then
    Error (Error.Stale_state { held = p.p_gen; current })
  else Ok (p.p_entry.c_eval.Evaluator.hit_count s)

(* Re-preparing a stale handle is the one read of its payload that must
   not be gated on the stamp: the target survives the generation change
   by design, and [prepare] re-stamps it against the live counter. *)
(* iqlint: allow generation-protocol *)
let refresh t p = prepare t ~target:p.p_target

(* {2 Improvement queries} *)

(* Budget precedence: an explicit budget wins, then an explicit
   deadline argument, then the IQ_DEADLINE_MS environment knob, then
   the shared unlimited budget (whose checks are a few atomic reads —
   the clean path stays clean). *)
let resolve_budget ?deadline_ms ?budget () =
  match budget with
  | Some b -> b
  | None -> (
      let dl =
        match deadline_ms with
        | Some _ -> deadline_ms
        | None -> Workload.Config.deadline_ms ()
      in
      match dl with
      | Some ms -> Resilience.Budget.create ~deadline_ms:ms ()
      | None -> Resilience.Budget.unlimited)

(* Convert a degraded search outcome into the typed anytime error,
   bumping the engine's trip counters. A [Steps] trip is reported as
   [Deadline_exceeded] too — both mean "the request's budget ran out";
   the elapsed time is measured from the budget either way. *)
let degraded_error t budget trip partial =
  match (trip : Resilience.Budget.trip) with
  | Resilience.Budget.Cancelled ->
      with_lock t (fun () -> t.cancellations <- t.cancellations + 1);
      Error (Error.Cancelled { partial = Some partial })
  | Resilience.Budget.Deadline { elapsed_ms } ->
      with_lock t (fun () -> t.deadline_trips <- t.deadline_trips + 1);
      Error (Error.Deadline_exceeded { elapsed_ms; partial = Some partial })
  | Resilience.Budget.Steps _ ->
      with_lock t (fun () -> t.deadline_trips <- t.deadline_trips + 1);
      Error
        (Error.Deadline_exceeded
           {
             elapsed_ms = Resilience.Budget.elapsed_ms budget;
             partial = Some partial;
           })

let min_cost ?limits ?max_iterations ?candidate_cap ?deadline_ms ?budget t
    ~cost ~target ~tau =
  guard @@ fun () ->
  let* () = check_target t target in
  let* () =
    check_dim ~expected:(Instance.dim (instance t)) ~got:cost.Cost.dim
  in
  let budget = resolve_budget ?deadline_ms ?budget () in
  with_failover t ~target (fun e ->
      let before = e.c_eval.Evaluator.evaluations () in
      match
        Min_cost.search ?limits ?max_iterations ?candidate_cap ~pool:t.pool
          ~budget ?fault:t.res.fault ~evaluator:e.c_eval ~cost ~target ~tau ()
      with
      | None -> Error Error.Infeasible
      | Some o -> (
          (* The cached evaluator accumulates across calls; report only
             this call's work, as a fresh evaluator would. *)
          let o =
            { o with Min_cost.evaluations = o.Min_cost.evaluations - before }
          in
          match o.Min_cost.status with
          | `Complete -> Ok o
          | `Degraded trip ->
              degraded_error t budget trip
                {
                  p_strategies = [ (target, o.Min_cost.strategy) ];
                  p_hits = o.Min_cost.hits_after;
                  p_total_cost = o.Min_cost.total_cost;
                  p_iterations = o.Min_cost.iterations;
                  p_flag = `Degraded;
                }))

let max_hit ?limits ?max_iterations ?candidate_cap ?deadline_ms ?budget t
    ~cost ~target ~beta =
  guard @@ fun () ->
  if beta < 0. then Error (Error.Budget_exhausted beta)
  else
    let* () = check_target t target in
    let* () =
      check_dim ~expected:(Instance.dim (instance t)) ~got:cost.Cost.dim
    in
    let budget = resolve_budget ?deadline_ms ?budget () in
    with_failover t ~target (fun e ->
        let before = e.c_eval.Evaluator.evaluations () in
        let o =
          Max_hit.search ?limits ?max_iterations ?candidate_cap ~pool:t.pool
            ~budget ?fault:t.res.fault ~evaluator:e.c_eval ~cost ~target ~beta
            ()
        in
        let o =
          { o with Max_hit.evaluations = o.Max_hit.evaluations - before }
        in
        match o.Max_hit.status with
        | `Complete -> Ok o
        | `Degraded trip ->
            degraded_error t budget trip
              {
                p_strategies = [ (target, o.Max_hit.strategy) ];
                p_hits = o.Max_hit.hits_after;
                p_total_cost = o.Max_hit.total_cost;
                p_iterations = o.Max_hit.iterations;
                p_flag = `Degraded;
              })

let check_costs t costs =
  if costs = [] then Error Error.Empty_targets
  else
    let d = Instance.dim (instance t) in
    List.fold_left
      (fun acc (target, cost) ->
        let* () = acc in
        let* () = check_target t target in
        check_dim ~expected:d ~got:cost.Cost.dim)
      (Ok ()) costs

let cached_states t costs =
  List.filter_map
    (fun (target, _) ->
      match (entry t ~target).c_state with
      | Some state -> Some (target, state)
      | None -> None)
    costs

let multi_partial o =
  {
    p_strategies = o.Combinatorial.strategies;
    p_hits = o.Combinatorial.union_hits_after;
    p_total_cost = o.Combinatorial.total_cost;
    p_iterations = o.Combinatorial.iterations;
    p_flag = `Degraded;
  }

(* The multi-target searches thread budget and faults through
   {!Combinatorial} but have no per-eval failover: their candidate
   scan runs on ESE states directly, not through a backend evaluator,
   so an injected fault there surfaces via [guard] as [Internal]. *)
let min_cost_multi ?limits ?max_iterations ?candidate_cap ?deadline_ms ?budget
    t ~costs ~tau =
  guard @@ fun () ->
  let* () = check_costs t costs in
  let budget = resolve_budget ?deadline_ms ?budget () in
  let states = cached_states t costs in
  match
    Combinatorial.min_cost ?limits ?max_iterations ?candidate_cap ~states
      ~budget ?fault:t.res.fault ~index:t.index ~costs ~tau ()
  with
  | None -> Error Error.Infeasible
  | Some o -> (
      match o.Combinatorial.status with
      | `Complete -> Ok o
      | `Degraded trip -> degraded_error t budget trip (multi_partial o))

let max_hit_multi ?limits ?max_iterations ?candidate_cap ?deadline_ms ?budget
    t ~costs ~beta =
  guard @@ fun () ->
  if beta < 0. then Error (Error.Budget_exhausted beta)
  else
    let* () = check_costs t costs in
    let budget = resolve_budget ?deadline_ms ?budget () in
    let states = cached_states t costs in
    let o =
      Combinatorial.max_hit ?limits ?max_iterations ?candidate_cap ~states
        ~budget ?fault:t.res.fault ~index:t.index ~costs ~beta ()
    in
    match o.Combinatorial.status with
    | `Complete -> Ok o
    | `Degraded trip -> degraded_error t budget trip (multi_partial o)

(* {2 Dataset maintenance} *)

let mutate t f =
  with_lock t (fun () ->
      let r = f () in
      t.gen <- t.gen + 1;
      r)

let add_query t q =
  guard @@ fun () ->
  let* () =
    check_dim ~expected:(Instance.dim (instance t))
      ~got:(Vec.dim q.Topk.Query.weights)
  in
  let depth = Query_index.depth t.index in
  if q.Topk.Query.k + 1 > depth then
    Error (Error.Depth_exceeded { k = q.Topk.Query.k; depth })
  else Ok (mutate t (fun () -> Query_index.add_query t.index q))

let remove_query t q =
  guard @@ fun () ->
  let* () = check_query t q in
  Ok (mutate t (fun () -> Query_index.remove_query t.index q))

let add_object t raw =
  guard @@ fun () ->
  let* () =
    check_dim ~expected:(Instance.dim_raw (instance t)) ~got:(Vec.dim raw)
  in
  Ok (mutate t (fun () -> Query_index.add_object t.index raw))

let update_object t id raw =
  guard @@ fun () ->
  let* () = check_target t id in
  let* () =
    check_dim ~expected:(Instance.dim_raw (instance t)) ~got:(Vec.dim raw)
  in
  Ok (mutate t (fun () -> Query_index.update_object t.index id raw))

let remove_object t id =
  guard @@ fun () ->
  let* () = check_target t id in
  Ok (mutate t (fun () -> Query_index.remove_object t.index id))

(* {2 Stats} *)

type backend_stats = {
  b_name : string;
  b_attempts : int;
  b_failures : int;
  b_retries : int;
  b_fallbacks : int;
  b_circuit_open : bool;
}

type stats = {
  generation : int;
  backend : string;
  prune : bool;
  domains : int;
  n_objects : int;
  n_queries : int;
  n_groups : int;
  index_words : int;
  cached_targets : int;
  stale_cached : int;
  repreparations : int;
  evaluations : int;
  backends : backend_stats list;
  deadline_trips : int;
  cancellations : int;
  faults_injected : int;
}

let stats t =
  with_lock t (fun () ->
      let inst = Query_index.instance t.index in
      let stale =
        Hashtbl.fold
          (fun _ e acc -> if e.c_gen <> t.gen then acc + 1 else acc)
          t.cache 0
      in
      let live_evals =
        Hashtbl.fold
          (fun _ e acc -> acc + e.c_eval.Evaluator.evaluations ())
          t.cache 0
      in
      let backends =
        Array.to_list t.chain
        |> List.filter_map (fun (module B : BACKEND) ->
               match Hashtbl.find_opt t.bstats B.name with
               | None -> None
               | Some st ->
                   Some
                     {
                       b_name = B.name;
                       b_attempts = st.bs_attempts;
                       b_failures = st.bs_failures;
                       b_retries = st.bs_retries;
                       b_fallbacks = st.bs_fallbacks;
                       b_circuit_open =
                         st.bs_open_until_ms > Resilience.now_ms ();
                     })
      in
      {
        generation = t.gen;
        backend = backend_name t;
        prune = t.prune;
        domains = Parallel.domains t.pool;
        n_objects = Instance.n_objects inst;
        n_queries = Instance.n_queries inst;
        n_groups = Query_index.n_groups t.index;
        index_words = Query_index.size_words t.index;
        cached_targets = Hashtbl.length t.cache;
        stale_cached = stale;
        repreparations = t.repreps;
        evaluations = t.retired_evals + live_evals;
        backends;
        deadline_trips = t.deadline_trips;
        cancellations = t.cancellations;
        faults_injected =
          (match t.res.fault with
          | None -> 0
          | Some f -> Resilience.Fault.injections f);
      })
