let compare_xy (a : Vec.t) (b : Vec.t) =
  match Float.compare a.(0) b.(0) with
  | 0 -> Float.compare a.(1) b.(1)
  | c -> c

let dedup pts =
  let sorted = List.sort_uniq compare_xy pts in
  sorted

let cross o a b =
  ((a.(0) -. o.(0)) *. (b.(1) -. o.(1)))
  -. ((a.(1) -. o.(1)) *. (b.(0) -. o.(0)))

let hull pts =
  List.iter
    (fun p -> if Vec.dim p <> 2 then invalid_arg "Geom.Chull.hull: 2-D only")
    pts;
  let pts = dedup pts in
  if List.length pts < 3 then pts
  else begin
    let arr = Array.of_list pts in
    let n = Array.length arr in
    let build indices =
      let stack = ref [] in
      let push p =
        let rec pop () =
          match !stack with
          | b :: (a :: _ as rest) when cross a b p <= 0. ->
              stack := rest;
              pop ()
          | _ -> ()
        in
        pop ();
        stack := p :: !stack
      in
      List.iter (fun i -> push arr.(i)) indices;
      List.rev !stack
    in
    let fwd = List.init n Fun.id in
    let bwd = List.rev fwd in
    let lower = build fwd and upper = build bwd in
    (* Drop the last point of each chain (it repeats at the start of the
       other chain). *)
    let trim l = match List.rev l with _ :: tl -> List.rev tl | [] -> [] in
    trim lower @ trim upper
  end

let layers pts =
  let eq a b = compare_xy a b = 0 in
  let rec go remaining acc =
    match dedup remaining with
    | [] -> List.rev acc
    | pts ->
        let h = hull pts in
        let rest =
          List.filter (fun p -> not (List.exists (eq p) h)) pts
        in
        go rest (h :: acc)
  in
  go pts []
