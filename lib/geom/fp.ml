(* Scalar epsilon comparisons, the float-robustness counterpart of
   [Vec.equal]/[Vec.is_zero]. The hyperplane/subdomain geometry breaks
   down when exact [=]/[compare] is used on computed floats (the
   `float-exact-compare` lint rule); route scalar comparisons through
   these instead. Default tolerance matches [Hyperplane.side]. *)

let default_eps = 1e-12
let equal ?(eps = default_eps) a b = abs_float (a -. b) <= eps
let is_zero ?(eps = default_eps) x = abs_float x <= eps
let nonzero ?eps x = not (is_zero ?eps x)

(* -1 / 0 / 1 with an epsilon-wide zero band. *)
let sign ?(eps = default_eps) x = if x > eps then 1 else if x < -.eps then -1 else 0
