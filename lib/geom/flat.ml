(* Structure-of-arrays geometry slab: all rows of a point set stored
   contiguously in one unboxed [float array], dim-strided. The boxed
   layout ([Vec.t array]) costs a pointer chase per row on the hot
   loops (slab classification scans every rival per candidate); the
   slab keeps the whole set cache-resident and lets inner loops index
   arithmetic instead.

   The slab is immutable from the caller's point of view: the patch
   operations ([append_row] / [update_row] / [remove_row]) return a
   fresh slab sharing nothing, mirroring the functional updates of
   [Instance]. Patches copy+blit the backing array — O(n·d), the same
   cost the boxed layout pays for [Array.copy] plus the row — rather
   than rebuilding from rows. *)

type t = {
  dim : int;
  rows : int;
  a : float array; (* length = rows * dim; row i at offset i * dim *)
}

let empty = { dim = 0; rows = 0; a = [||] }

let of_rows rows =
  let n = Array.length rows in
  if n = 0 then empty
  else begin
    let dim = Array.length rows.(0) in
    let a = Array.make (n * dim) 0. in
    Array.iteri
      (fun i (r : Vec.t) ->
        if Array.length r <> dim then
          invalid_arg "Geom.Flat.of_rows: ragged rows";
        Array.blit r 0 a (i * dim) dim)
      rows;
    { dim; rows = n; a }
  end

let dim t = t.dim
let rows t = t.rows

(* The backing array, exposed for inner loops. Row [i] occupies
   [i * dim t .. i * dim t + dim t - 1]; treat it as read-only — the
   slab is shared by every structure derived from the same instance. *)
let data t = t.a
let offset t i = i * t.dim

let get t i j = t.a.((i * t.dim) + j)

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Geom.Flat.row: bad index";
  Array.sub t.a (i * t.dim) t.dim

(* [w . row i] with the same operand order and accumulation sequence as
   [Vec.dot w row] — flat reads must not change a single rounding. *)
let dot t i (w : Vec.t) =
  if Array.length w <> t.dim then invalid_arg "Geom.Flat.dot: arity mismatch";
  let off = i * t.dim in
  let acc = ref 0. in
  for j = 0 to t.dim - 1 do
    acc := !acc +. (w.(j) *. t.a.(off + j))
  done;
  !acc

let check_row t (r : Vec.t) name =
  if t.rows > 0 && Array.length r <> t.dim then
    invalid_arg ("Geom.Flat." ^ name ^ ": arity mismatch")

let append_row t r =
  check_row t r "append_row";
  if t.rows = 0 then of_rows [| r |]
  else begin
    let a = Array.make ((t.rows + 1) * t.dim) 0. in
    Array.blit t.a 0 a 0 (t.rows * t.dim);
    Array.blit r 0 a (t.rows * t.dim) t.dim;
    { t with rows = t.rows + 1; a }
  end

let update_row t i r =
  if i < 0 || i >= t.rows then invalid_arg "Geom.Flat.update_row: bad index";
  check_row t r "update_row";
  let a = Array.copy t.a in
  Array.blit r 0 a (i * t.dim) t.dim;
  { t with a }

let remove_row t i =
  if i < 0 || i >= t.rows then invalid_arg "Geom.Flat.remove_row: bad index";
  if t.rows = 1 then empty
  else begin
    let a = Array.make ((t.rows - 1) * t.dim) 0. in
    Array.blit t.a 0 a 0 (i * t.dim);
    Array.blit t.a ((i + 1) * t.dim) a (i * t.dim) ((t.rows - 1 - i) * t.dim);
    { t with rows = t.rows - 1; a }
  end

let to_rows t = Array.init t.rows (row t)
