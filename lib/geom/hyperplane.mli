(** Hyperplanes in [R^d], written as [{ x | normal . x = offset }].

    In the improvement-query setting a hyperplane is the intersection of
    two object functions [f_i] and [f_l] inside the query-weight domain:
    [normal = p_i - p_l] and [offset = 0] (Equation 2 of the paper). The
    "above" side is where [normal . x >= offset], i.e. where [f_i] scores
    at least as high as [f_l]. *)

type t = private { normal : Vec.t; offset : float }

type side = Above | Below | On

val make : normal:Vec.t -> offset:float -> t
(** @raise Invalid_argument if [normal] is the zero vector. *)

val of_points : Vec.t -> Vec.t -> t option
(** [of_points p_i p_l] is the intersection hyperplane of the two object
    functions, [None] when the objects coincide (no intersection). *)

val dim : t -> int

val eval : t -> Vec.t -> float
(** [eval h x] is [normal . x - offset]; positive on the above side. *)

val side : ?eps:float -> t -> Vec.t -> side
(** Which side of [h] the point lies on, with tolerance [eps]
    (default [1e-12]). Points within [eps] are [On]. *)

val above_or_on : ?eps:float -> t -> Vec.t -> bool
(** The paper treats on-plane queries as above; this is that predicate. *)

val shift : t -> Vec.t -> t
(** [shift h s] is the hyperplane after the target object is improved by
    [s]: the normal becomes [normal + s] (Equation 3). When the new normal
    is zero the functions coincide; we return a degenerate-free plane by
    raising [Invalid_argument]. Use {!shift_opt} to observe that case. *)

val shift_opt : t -> Vec.t -> t option

val distance : t -> Vec.t -> float
(** Euclidean distance from a point to the hyperplane. *)

val project : t -> Vec.t -> Vec.t
(** Orthogonal projection of a point onto the hyperplane. *)

val box_min_max : t -> lo:Vec.t -> hi:Vec.t -> float * float
(** [box_min_max h ~lo ~hi] is the (min, max) of [normal . x - offset]
    over the axis-aligned box [\[lo, hi\]]; used to prune R-tree nodes
    against halfspaces without visiting their contents. *)

val box_min_max_n : normal:Vec.t -> lo:Vec.t -> hi:Vec.t -> float * float
(** [box_min_max_n ~normal ~lo ~hi] is [box_min_max (make ~normal
    ~offset:0.) ~lo ~hi] without constructing the hyperplane (and without
    the zero-normal check) — bit-for-bit identical results. Hot loops use
    this to range a candidate plane over the weight domain per rival. *)

val pp : Format.formatter -> t -> unit
