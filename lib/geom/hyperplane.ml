type t = { normal : Vec.t; offset : float }
type side = Above | Below | On

let make ~normal ~offset =
  if Vec.is_zero ~eps:0. normal then
    invalid_arg "Geom.Hyperplane.make: zero normal";
  { normal; offset }

let of_points p_i p_l =
  let normal = Vec.sub p_i p_l in
  if Vec.is_zero ~eps:0. normal then None
  else Some { normal; offset = 0. }

let dim h = Vec.dim h.normal
let eval h x = Vec.dot h.normal x -. h.offset

let side ?(eps = 1e-12) h x =
  let v = eval h x in
  if v > eps then Above else if v < -.eps then Below else On

let above_or_on ?eps h x =
  match side ?eps h x with Above | On -> true | Below -> false

let shift_opt h s =
  let normal = Vec.add h.normal s in
  if Vec.is_zero ~eps:0. normal then None else Some { h with normal }

let shift h s =
  match shift_opt h s with
  | Some h' -> h'
  | None -> invalid_arg "Geom.Hyperplane.shift: functions coincide"

let distance h x = abs_float (eval h x) /. Vec.norm h.normal

let project h x =
  let t = eval h x /. Vec.norm2 h.normal in
  Vec.sub x (Vec.scale t h.normal)

let box_min_max h ~lo ~hi =
  let n = h.normal in
  let mn = ref (-.h.offset) and mx = ref (-.h.offset) in
  for j = 0 to Vec.dim n - 1 do
    let c = n.(j) in
    if c >= 0. then begin
      mn := !mn +. (c *. lo.(j));
      mx := !mx +. (c *. hi.(j))
    end
    else begin
      mn := !mn +. (c *. hi.(j));
      mx := !mx +. (c *. lo.(j))
    end
  done;
  (!mn, !mx)

(* Same accumulation as [box_min_max] for an offset-0 plane given as a
   bare normal — lets hot loops range hyperplanes over a box without
   constructing a [t] per candidate. Accumulators start at [-. 0.] so
   the rounding sequence matches [box_min_max] exactly. *)
let box_min_max_n ~normal ~lo ~hi =
  let mn = ref (-.0.) and mx = ref (-.0.) in
  for j = 0 to Array.length normal - 1 do
    let c = normal.(j) in
    if c >= 0. then begin
      mn := !mn +. (c *. lo.(j));
      mx := !mx +. (c *. hi.(j))
    end
    else begin
      mn := !mn +. (c *. hi.(j));
      mx := !mx +. (c *. lo.(j))
    end
  done;
  (!mn, !mx)

let pp ppf h =
  Format.fprintf ppf "{%a . x = %g}" Vec.pp h.normal h.offset
