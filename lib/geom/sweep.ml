type segment = { a : Vec.t; b : Vec.t; tag : int }

let segment ?(tag = 0) a b =
  if Vec.dim a <> 2 || Vec.dim b <> 2 then
    invalid_arg "Geom.Sweep.segment: 2-D only";
  { a; b; tag }

let on_segment s (p : Vec.t) =
  let eps = 1e-12 in
  Float.min s.a.(0) s.b.(0) -. eps <= p.(0)
  && p.(0) <= Float.max s.a.(0) s.b.(0) +. eps
  && Float.min s.a.(1) s.b.(1) -. eps <= p.(1)
  && p.(1) <= Float.max s.a.(1) s.b.(1) +. eps

let segment_intersection s1 s2 =
  (* Scalar 2-D form of the parametric test: the boxed version allocated
     three difference vectors and a result via [Vec.sub]/[Vec.add]/
     [Vec.scale] per call, which dominated sweep-heavy subdomain builds.
     Every expression below mirrors the componentwise arithmetic of those
     helpers, so results are bit-for-bit unchanged. *)
  let p = s1.a and q = s2.a in
  let rx = s1.b.(0) -. s1.a.(0) and ry = s1.b.(1) -. s1.a.(1) in
  let sx = s2.b.(0) -. s2.a.(0) and sy = s2.b.(1) -. s2.a.(1) in
  let rxs = (rx *. sy) -. (ry *. sx) in
  let qpx = q.(0) -. p.(0) and qpy = q.(1) -. p.(1) in
  let qpxr = (qpx *. ry) -. (qpy *. rx) in
  let eps = 1e-12 in
  if abs_float rxs <= eps then
    if abs_float qpxr > eps then None (* parallel, non-collinear *)
    else begin
      (* Collinear: report an endpoint lying on the other segment. *)
      let candidates = [ s2.a; s2.b; s1.a; s1.b ] in
      List.find_opt (fun c -> on_segment s1 c && on_segment s2 c) candidates
    end
  else
    let t = ((qpx *. sy) -. (qpy *. sx)) /. rxs in
    let u = qpxr /. rxs in
    (* p + t r = q + u s  =>  t = (q-p) x s / (r x s),
                              u = (q-p) x r / (r x s). *)
    if t >= -.eps && t <= 1. +. eps && u >= -.eps && u <= 1. +. eps then
      Some [| p.(0) +. (t *. rx); p.(1) +. (t *. ry) |]
    else None

let x_lo s = Float.min s.a.(0) s.b.(0)
let x_hi s = Float.max s.a.(0) s.b.(0)

let intersections segs =
  let sorted = List.sort (fun s1 s2 -> Float.compare (x_lo s1) (x_lo s2)) segs in
  let out = ref [] in
  let active : segment list ref = ref [] in
  let step s =
    active := List.filter (fun t -> x_hi t >= x_lo s) !active;
    let check t =
      match segment_intersection s t with
      | Some p -> out := (t, s, p) :: !out
      | None -> ()
    in
    List.iter check !active;
    active := s :: !active
  in
  List.iter step sorted;
  List.rev !out

let line_segment_in_box normal offset (box : Box.t) =
  if Vec.dim normal <> 2 then
    invalid_arg "Geom.Sweep.line_segment_in_box: 2-D only";
  let nx = normal.(0) and ny = normal.(1) in
  let pts = ref [] in
  let add p = if Box.contains_point box p then pts := p :: !pts in
  let x0 = box.Box.lo.(0) and x1 = box.Box.hi.(0) in
  let y0 = box.Box.lo.(1) and y1 = box.Box.hi.(1) in
  (* Crossings with the four box edges. *)
  if Fp.nonzero ny then begin
    add [| x0; (offset -. (nx *. x0)) /. ny |];
    add [| x1; (offset -. (nx *. x1)) /. ny |]
  end;
  if Fp.nonzero nx then begin
    add [| (offset -. (ny *. y0)) /. nx; y0 |];
    add [| (offset -. (ny *. y1)) /. nx; y1 |]
  end;
  let uniq =
    List.fold_left
      (fun acc p -> if List.exists (Vec.equal ~eps:1e-9 p) acc then acc else p :: acc)
      [] !pts
  in
  match uniq with
  | [ p; q ] -> Some (segment p q)
  | [ p ] -> Some (segment p p)
  | _ -> None
