(** Structure-of-arrays geometry slab.

    All rows of a point set live contiguously in one unboxed
    [float array], dim-strided: row [i] occupies offsets
    [i * dim .. i * dim + dim - 1]. Hot loops (slab classification,
    candidate evaluation) index into {!data} directly instead of
    chasing per-row boxed vectors.

    Slabs are immutable: the patch operations return fresh slabs, in
    step with the functional updates of [Iq.Instance]. *)

type t

(** The empty slab ([dim] = 0, [rows] = 0). *)
val empty : t

(** Build a slab from boxed rows. All rows must share one dimension.
    @raise Invalid_argument on ragged input. *)
val of_rows : Vec.t array -> t

val dim : t -> int
val rows : t -> int

(** The backing array. Row [i] starts at [offset t i] and spans
    [dim t] cells. Read-only by convention — slabs are shared. *)
val data : t -> float array

(** Start offset of row [i] in {!data}. *)
val offset : t -> int -> int

(** [get t i j] is coordinate [j] of row [i]. Unchecked beyond array
    bounds. *)
val get : t -> int -> int -> float

(** Materialize row [i] as a fresh boxed vector. *)
val row : t -> int -> Vec.t

(** [dot t i w] is [Vec.dot w (row t i)] with identical operand order
    and accumulation sequence (bit-for-bit equal results). *)
val dot : t -> int -> Vec.t -> float

val append_row : t -> Vec.t -> t
val update_row : t -> int -> Vec.t -> t
val remove_row : t -> int -> t

(** Materialize every row (mainly for tests). *)
val to_rows : t -> Vec.t array
