type t = float array

let dim = Array.length
let make d x = Array.make d x
let zero d = make d 0.
let init = Array.init
let of_list = Array.of_list
let to_list = Array.to_list
let copy = Array.copy
let get v i = v.(i)

let basis d i =
  let v = zero d in
  v.(i) <- 1.;
  v

let check_dim a b =
  if Array.length a <> Array.length b then
    invalid_arg "Geom.Vec: dimension mismatch"

let map2 f a b =
  check_dim a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let scale c v = Array.map (fun x -> c *. x) v
let neg v = scale (-1.) v

let dot a b =
  check_dim a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 v = dot v v
let norm v = sqrt (norm2 v)
let l1_norm v = Array.fold_left (fun acc x -> acc +. abs_float x) 0. v
let linf_norm v = Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0. v
let dist2 a b = norm2 (sub a b)
let dist a b = sqrt (dist2 a b)

let normalize v =
  let n = norm v in
  (* iqlint: allow float-exact-compare — exact: any nonzero norm is normalisable *)
  if n = 0. then v else scale (1. /. n) v

let normalize_l1 v =
  let s = Array.fold_left ( +. ) 0. v in
  (* iqlint: allow float-exact-compare — exact: any nonzero sum is normalisable *)
  if s = 0. then v else scale (1. /. s) v

let lerp a b t = add a (scale t (sub b a))
let map = Array.map

let for_all2 f a b =
  check_dim a b;
  let rec go i = i >= Array.length a || (f a.(i) b.(i) && go (i + 1)) in
  go 0

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && for_all2 (fun x y -> abs_float (x -. y) <= eps) a b

let is_zero ?(eps = 1e-9) v = Array.for_all (fun x -> abs_float x <= eps) v

let clamp ~lo ~hi v =
  check_dim lo v;
  check_dim hi v;
  Array.init (Array.length v) (fun i -> Float.min hi.(i) (Float.max lo.(i) v.(i)))

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (to_list v)
