type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Text of string

type ty = TBool | TInt | TFloat | TText

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Text _ -> Some TText

let ty_name = function
  | TBool -> "BOOLEAN"
  | TInt -> "INTEGER"
  | TFloat -> "REAL"
  | TText -> "TEXT"

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Text _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1. else 0.)
  | Null | Text _ -> None

let to_int = function
  | Int i -> Some i
  | Float f -> Some (int_of_float f)
  | Bool b -> Some (if b then 1 else 0)
  | Null | Text _ -> None

let to_bool = function
  | Bool b -> Some b
  | Int i -> Some (i <> 0)
  (* iqlint: allow float-exact-compare — SQL truthiness of a float is exact non-zero by definition *)
  | Float f -> Some (f <> 0.)
  | Null | Text _ -> None

let of_float f = Float f
let of_int i = Int i

let of_string_typed ty s =
  let s = String.trim s in
  if s = "" then Null
  else
    match ty with
    | TInt -> Int (int_of_string s)
    | TFloat -> Float (float_of_string s)
    | TBool -> (
        match String.lowercase_ascii s with
        | "true" | "t" | "1" -> Bool true
        | "false" | "f" | "0" -> Bool false
        | _ -> failwith ("Value.of_string_typed: bad boolean " ^ s))
    | TText -> Text s

let infer_of_string s =
  let s' = String.trim s in
  if s' = "" then Null
  else
    match int_of_string_opt s' with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s' with
        | Some f -> Float f
        | None -> (
            match String.lowercase_ascii s' with
            | "true" -> Bool true
            | "false" -> Bool false
            | _ -> Text s))

let to_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.12g" f
  | Text s -> s

let pp ppf v =
  match v with
  | Null -> Format.pp_print_string ppf "NULL"
  | Text s -> Format.fprintf ppf "%S" s
  | v -> Format.pp_print_string ppf (to_string v)

let is_null = function Null -> true | _ -> false
