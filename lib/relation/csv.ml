let parse_line line =
  let buf = Buffer.create 32 in
  let fields = ref [] in
  let n = String.length line in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
          flush ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then flush () (* unterminated quote: be lenient *)
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !fields

(* Split on newlines that are outside quotes. *)
let split_records s =
  let records = ref [] in
  let buf = Buffer.create 128 in
  let in_quotes = ref false in
  let flush () =
    records := Buffer.contents buf :: !records;
    Buffer.clear buf
  in
  String.iter
    (fun c ->
      match c with
      | '"' ->
          in_quotes := not !in_quotes;
          Buffer.add_char buf c
      | '\n' when not !in_quotes -> flush ()
      | '\r' -> ()
      | c -> Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 then flush ();
  List.rev (List.filter (fun r -> String.trim r <> "") !records)

let parse_string s = List.map parse_line (split_records s)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n') s

let render_field s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_line fields = String.concat "," (List.map render_field fields)

let table_of_string ?(header = true) s =
  match parse_string s with
  | [] -> invalid_arg "Csv.table_of_string: empty document"
  | first :: rest ->
      let names, data =
        if header then (first, rest)
        else (List.mapi (fun i _ -> Printf.sprintf "c%d" i) first, first :: rest)
      in
      let infer_col j =
        let rec from = function
          | [] -> Value.TText
          | row :: rest -> (
              match List.nth_opt row j with
              | Some cell when String.trim cell <> "" -> (
                  match Value.infer_of_string cell with
                  | Value.Int _ -> Value.TInt
                  | Value.Float _ -> Value.TFloat
                  | Value.Bool _ -> Value.TBool
                  | Value.Text _ | Value.Null -> Value.TText)
              | _ -> from rest)
        in
        from data
      in
      let tys = List.mapi (fun j _ -> infer_col j) names in
      let schema =
        Schema.make
          (List.map2 (fun name ty -> { Schema.name; ty }) names tys)
      in
      let table = Table.create schema in
      List.iter
        (fun row ->
          let padded =
            List.mapi
              (fun j ty ->
                match List.nth_opt row j with
                | Some cell -> (
                    (* of_string_typed only fails via Failure
                       (int/float/bool conversions). *)
                    try Value.of_string_typed ty cell
                    with Failure _ -> Value.infer_of_string cell)
                | None -> Value.Null)
              tys
          in
          Table.insert table (Array.of_list padded))
        data;
      table

let string_of_table ?(header = true) t =
  let buf = Buffer.create 1024 in
  if header then begin
    Buffer.add_string buf (render_line (Schema.names (Table.schema t)));
    Buffer.add_char buf '\n'
  end;
  Table.iter t (fun row ->
      Buffer.add_string buf
        (render_line (List.map Value.to_string (Array.to_list row)));
      Buffer.add_char buf '\n');
  Buffer.contents buf

let load_file ?header path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  table_of_string ?header s

let save_file ?header path t =
  let s = string_of_table ?header t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)
