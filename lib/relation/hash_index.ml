type t = {
  column : string;
  buckets : (string, int list) Hashtbl.t; (* canonical value -> rows *)
  distinct : int;
  rows : int;
}

(* Canonical key: numeric values collapse across Int/Float (SQL
   equality is numeric), everything else by tagged string. *)
let key v =
  match Value.to_float v with
  | Some f when not (Value.is_null v) -> Printf.sprintf "n:%.17g" f
  | _ -> (
      match v with
      | Value.Text s -> "t:" ^ s
      | Value.Bool b -> "b:" ^ string_of_bool b
      | _ -> "?:" ^ Value.to_string v)

let build table column =
  let idx =
    match Schema.index_of (Table.schema table) column with
    | Some i -> i
    | None -> invalid_arg ("Hash_index.build: unknown column " ^ column)
  in
  let buckets = Hashtbl.create (Int.max 16 (Table.length table / 4)) in
  Table.iteri table (fun row_pos row ->
      let v = row.(idx) in
      if not (Value.is_null v) then begin
        let k = key v in
        let existing =
          match Hashtbl.find_opt buckets k with Some l -> l | None -> []
        in
        Hashtbl.replace buckets k (row_pos :: existing)
      end);
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) buckets [] in
  List.iter
    (fun k ->
      match Hashtbl.find_opt buckets k with
      | Some rows -> Hashtbl.replace buckets k (List.rev rows)
      | None -> ())
    keys;
  {
    column;
    buckets;
    distinct = Hashtbl.length buckets;
    rows = Table.length table;
  }

let table_column t = t.column

let lookup t v =
  if Value.is_null v then []
  else match Hashtbl.find_opt t.buckets (key v) with Some l -> l | None -> []

let cardinality t = t.distinct
let row_count t = t.rows
